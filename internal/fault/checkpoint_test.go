package fault

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCheckpoint() Checkpoint {
	return Checkpoint{
		Space: "NLP.c3[8x3]", Seed: 42, GPUs: 4, NumSubnets: 48,
		Cursor: 17, Incarnation: 2, WeightChecksum: 0xdeadbeefcafe1234,
		FaultSeed: 7, JitterSeed: 11, Finished: []int{19, 21},
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
	// Empty Finished must round-trip to nil, not a zero-length slice.
	c.Finished = nil
	got, err = Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Finished != nil {
		t.Fatalf("empty finished decoded as %v", got.Finished)
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	buf := sampleCheckpoint().Encode()
	cases := map[string][]byte{
		"empty":       {},
		"short":       buf[:8],
		"bad magic":   append([]byte("XXXX"), buf[4:]...),
		"bad version": append(append([]byte{}, buf[:4]...), append([]byte{99}, buf[5:]...)...),
		"truncated":   buf[:len(buf)-3],
	}
	flipped := append([]byte(nil), buf...)
	flipped[10] ^= 0xff
	cases["bit flip"] = flipped
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestCheckpointSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.bin")
	c := sampleCheckpoint()
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("Load mismatch: %+v vs %+v", got, c)
	}
	// Overwrite with a later state; no temp files may linger.
	c.Cursor = 30
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ck.bin" {
		t.Fatalf("directory not clean after save: %v", entries)
	}
	got, _ = Load(path)
	if got.Cursor != 30 {
		t.Fatalf("overwrite lost: cursor %d", got.Cursor)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.bin")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestFileRecorderThrottleAndFinalCut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	ident := Checkpoint{Space: "s", Seed: 1, GPUs: 2, NumSubnets: 10}
	r := NewFileRecorder(path, ident, 4, nil)
	if err := r.Init(); err != nil {
		t.Fatal(err)
	}
	for cur := 1; cur <= 10; cur++ {
		if err := r.Snapshot(Cut{Cursor: cur}); err != nil {
			t.Fatal(err)
		}
	}
	// Init + cursors 4, 8 + the always-saved final cut (10).
	if got := r.Saves(); got != 4 {
		t.Fatalf("saves = %d, want 4 (init + 4 + 8 + final)", got)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cursor != 10 {
		t.Fatalf("final cursor %d, want 10", got.Cursor)
	}
}

func TestFileRecorderIgnoresStaleCuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	r := NewFileRecorder(path, Checkpoint{NumSubnets: 10, Cursor: 5}, 1, nil)
	if err := r.Snapshot(Cut{Cursor: 3}); err != nil {
		t.Fatal(err)
	}
	if got := r.Last().Cursor; got != 5 {
		t.Fatalf("stale cut regressed cursor to %d", got)
	}
}

func TestFileRecorderBumpAndWeightFn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	weightFn := func(cursor int) uint64 { return uint64(1000 + cursor) }
	r := NewFileRecorder(path, Checkpoint{Space: "s", NumSubnets: 10}, 1, weightFn)
	if err := r.Snapshot(Cut{Cursor: 7, Finished: []int{9, 8}}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.WeightChecksum != 1007 {
		t.Fatalf("weight checksum %d, want 1007", got.WeightChecksum)
	}
	if !reflect.DeepEqual(got.Finished, []int{8, 9}) {
		t.Fatalf("finished not sorted: %v", got.Finished)
	}
	if err := r.Bump(); err != nil {
		t.Fatal(err)
	}
	got, _ = Load(path)
	if got.Incarnation != 1 || got.Cursor != 7 {
		t.Fatalf("bump state wrong: %+v", got)
	}
}
