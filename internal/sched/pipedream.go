package sched

import "naspipe/internal/engine"

// ASPPolicy implements PipeDream's asynchronous parallel 1F1B schedule:
// each stage interleaves one forward with one backward in steady state,
// parameter updates apply asynchronously with no flush barrier, and no
// causal dependency between subnets is observed. The pipeline keeps at
// most D subnets in flight (stage k admits a forward only while fewer
// than D−k of its forwards await their backward), which is what keeps the
// bubble ratio near 0.1.
//
// PipeDream does not use activation recomputation (§4.2 note); it stashes
// activations per in-flight weight version, which the engine models as a
// doubled activation footprint — the reason its supported batch is about
// half of GPipe's in Table 2.
type ASPPolicy struct {
	engine.BasePolicy
	w           *engine.World
	outstanding []int // per stage: forwards started minus backwards done
}

// NewPipeDream returns the PipeDream baseline.
func NewPipeDream() *ASPPolicy { return &ASPPolicy{} }

// Traits implements engine.Policy.
func (p *ASPPolicy) Traits() engine.Traits {
	return engine.Traits{
		Name:           "PipeDream",
		Reproducible:   false,
		Partition:      engine.PartitionStatic,
		CacheFactor:    0,
		ActStashFactor: 2,
	}
}

// Init implements engine.Policy.
func (p *ASPPolicy) Init(w *engine.World) {
	p.w = w
	p.outstanding = make([]int, w.D)
}

// SelectForward admits the head of the queue while the stage's 1F1B
// in-flight budget (D − stage) has room. Returning an index starts the
// task immediately (engine contract), so the budget is charged here.
func (p *ASPPolicy) SelectForward(stage int, queue []int, now float64) int {
	if len(queue) == 0 {
		return -1
	}
	if p.outstanding[stage] >= p.w.D-stage {
		return -1
	}
	p.outstanding[stage]++
	return 0
}

// SelectBackward drains gradients in arrival order — combined with the
// engine's backward-first invocation this realizes 1F1B.
func (p *ASPPolicy) SelectBackward(stage int, ready []int, now float64) int {
	if len(ready) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(ready); i++ {
		if ready[i] < ready[best] {
			best = i
		}
	}
	return best
}

// OnBackwardDone returns the in-flight budget.
func (p *ASPPolicy) OnBackwardDone(stage, seq int, now float64) {
	p.outstanding[stage]--
}

var _ engine.Policy = (*ASPPolicy)(nil)
