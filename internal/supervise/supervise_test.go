package supervise_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/supervise"
)

// quietCfg is the unit-test baseline: watchdog off (fakes publish no
// health), backoff shrunk so retry loops run in microseconds.
func quietCfg() supervise.Config {
	return supervise.Config{
		BackoffBase: 100 * time.Microsecond,
		BackoffMax:  time.Millisecond,
		Watchdog:    supervise.WatchdogConfig{Disabled: true},
	}
}

// crashOn builds an incarnation that fails with a *fault.CrashError on
// the given stage while shouldCrash returns true, completing otherwise.
func crashOn(stage int, total int, shouldCrash func(gpus int) bool, gpusSeen *[]int) supervise.Incarnation {
	return func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		if gpusSeen != nil {
			*gpusSeen = append(*gpusSeen, gpus)
		}
		if shouldCrash(gpus) {
			return engine.Result{}, &fault.CrashError{Stage: stage, Seq: 0, Kind: fault.KindForward}
		}
		return engine.Result{Completed: total}, nil
	}
}

// advancingCursor returns a Cursor that moves forward on every read —
// the signal that keeps the crash-loop detector satisfied.
func advancingCursor() func() (int, error) {
	n := 0
	return func() (int, error) { n++; return n, nil }
}

func transitionStates(rep *supervise.Report) []supervise.State {
	out := make([]supervise.State, 0, len(rep.Transitions))
	for _, tr := range rep.Transitions {
		out = append(out, tr.To)
	}
	return out
}

func TestSupervisorHappyPath(t *testing.T) {
	ok := crashOn(0, 9, func(int) bool { return false }, nil)
	res, rep, err := supervise.Run(context.Background(), quietCfg(), supervise.Job{
		Run: ok, Resume: ok, Cursor: advancingCursor(), GPUs: 8, Total: 9,
	})
	if err != nil {
		t.Fatalf("happy path errored: %v", err)
	}
	if res.Completed != 9 || rep.FinalState != supervise.Done || rep.Restarts != 0 {
		t.Fatalf("unexpected report: completed=%d state=%v restarts=%d", res.Completed, rep.FinalState, rep.Restarts)
	}
	if got := transitionStates(rep); len(got) != 1 || got[0] != supervise.Done {
		t.Fatalf("transitions = %v, want single edge to done", got)
	}
}

func TestSupervisorCrashThenResume(t *testing.T) {
	attempts := 0
	run := func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		attempts++
		if attempts == 1 {
			return engine.Result{}, &fault.CrashError{Stage: 2, Seq: 5, Kind: fault.KindForward}
		}
		return engine.Result{Completed: 9, BaseSeq: 3}, nil
	}
	res, rep, err := supervise.Run(context.Background(), quietCfg(), supervise.Job{
		Run: run, Resume: run, Cursor: func() (int, error) { return 3, nil }, GPUs: 8, Total: 9,
	})
	if err != nil {
		t.Fatalf("supervised crash did not recover: %v", err)
	}
	if rep.Restarts != 1 || len(rep.Incidents) != 1 {
		t.Fatalf("restarts=%d incidents=%d, want 1 and 1", rep.Restarts, len(rep.Incidents))
	}
	in := rep.Incidents[0]
	if in.Stage != 2 || in.CursorAfter != 3 || in.Stall != nil {
		t.Fatalf("incident misattributed: %+v", in)
	}
	if res.BaseSeq != 3 {
		t.Fatalf("final result lost resume base: %+v", res)
	}
	want := []supervise.State{supervise.Degraded, supervise.Recovering, supervise.Running, supervise.Done}
	got := transitionStates(rep)
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSupervisorRestartBudget(t *testing.T) {
	cfg := quietCfg()
	cfg.MaxRestarts = 2
	cfg.CrashLoopWindow = 100 // keep the other give-up out of the way
	always := crashOn(1, 9, func(int) bool { return true }, nil)
	_, rep, err := supervise.Run(context.Background(), cfg, supervise.Job{
		Run: always, Resume: always, Cursor: advancingCursor(), GPUs: 4, Total: 9,
	})
	var giveUp *supervise.GiveUpError
	if !errors.As(err, &giveUp) {
		t.Fatalf("want *GiveUpError, got %v", err)
	}
	if !strings.Contains(giveUp.Reason, "restart budget") {
		t.Fatalf("wrong give-up reason: %q", giveUp.Reason)
	}
	if rep.FinalState != supervise.Failed || rep.Restarts != cfg.MaxRestarts+1 {
		t.Fatalf("state=%v restarts=%d, want failed after %d", rep.FinalState, rep.Restarts, cfg.MaxRestarts+1)
	}
}

func TestSupervisorCrashLoopGiveUp(t *testing.T) {
	cfg := quietCfg()
	cfg.CrashLoopWindow = 3
	always := crashOn(0, 9, func(int) bool { return true }, nil)
	_, rep, err := supervise.Run(context.Background(), cfg, supervise.Job{
		Run: always, Resume: always,
		Cursor: func() (int, error) { return 0, nil }, // never advances
		GPUs:   4, Total: 9,
	})
	var giveUp *supervise.GiveUpError
	if !errors.As(err, &giveUp) {
		t.Fatalf("want *GiveUpError, got %v", err)
	}
	if !strings.Contains(giveUp.Reason, "crash loop") {
		t.Fatalf("wrong give-up reason: %q", giveUp.Reason)
	}
	// The error text carries the full fault timeline: one line per
	// incident, naming incarnation, depth, stage, and cursor.
	msg := giveUp.Error()
	for _, frag := range []string{"incident timeline", "incarnation 0 (D=4)", "incarnation 2 (D=4)", "crash on stage 0"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("give-up error lacks %q:\n%s", frag, msg)
		}
	}
	if len(rep.Incidents) != 3 {
		t.Fatalf("incidents=%d, want 3 (the crash-loop window)", len(rep.Incidents))
	}
}

func TestSupervisorElasticHalving(t *testing.T) {
	cfg := quietCfg()
	cfg.ElasticAfter = 2
	cfg.MinGPUs = 2
	cfg.MaxRestarts = 10
	var gpusSeen []int
	// Crash on stage 3 until the supervisor has halved the depth to 2.
	run := crashOn(3, 9, func(gpus int) bool { return gpus > 2 }, &gpusSeen)
	_, rep, err := supervise.Run(context.Background(), cfg, supervise.Job{
		Run: run, Resume: run, Cursor: advancingCursor(), GPUs: 8, Total: 9,
	})
	if err != nil {
		t.Fatalf("elastic recovery failed: %v", err)
	}
	want := []int{8, 8, 4, 4, 2}
	if len(gpusSeen) != len(want) {
		t.Fatalf("attempt depths %v, want %v", gpusSeen, want)
	}
	for i := range want {
		if gpusSeen[i] != want[i] {
			t.Fatalf("attempt depths %v, want %v", gpusSeen, want)
		}
	}
	if len(rep.ElasticSteps) != 2 || rep.ElasticSteps[0] != 4 || rep.ElasticSteps[1] != 2 {
		t.Fatalf("elastic steps %v, want [4 2]", rep.ElasticSteps)
	}
	if rep.FinalGPUs != 2 || rep.FinalState != supervise.Done {
		t.Fatalf("final depth %d state %v, want 2/done", rep.FinalGPUs, rep.FinalState)
	}
}

func TestSupervisorElasticFloor(t *testing.T) {
	cfg := quietCfg()
	cfg.ElasticAfter = 1
	cfg.MinGPUs = 4
	cfg.MaxRestarts = 3
	var gpusSeen []int
	always := crashOn(1, 9, func(int) bool { return true }, &gpusSeen)
	_, rep, err := supervise.Run(context.Background(), cfg, supervise.Job{
		Run: always, Resume: always, Cursor: advancingCursor(), GPUs: 8, Total: 9,
	})
	var giveUp *supervise.GiveUpError
	if !errors.As(err, &giveUp) {
		t.Fatalf("want budget give-up, got %v", err)
	}
	// One halving 8→4, then the MinGPUs floor holds depth at 4.
	for i, g := range gpusSeen {
		if g < 4 {
			t.Fatalf("attempt %d ran below the MinGPUs floor: %v", i, gpusSeen)
		}
	}
	if len(rep.ElasticSteps) != 1 || rep.ElasticSteps[0] != 4 {
		t.Fatalf("elastic steps %v, want [4]", rep.ElasticSteps)
	}
}

func TestSupervisorInterruptionPassthrough(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	run := func(runCtx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		cancel() // external interruption mid-incarnation
		<-runCtx.Done()
		return engine.Result{Completed: 2}, runCtx.Err()
	}
	res, rep, err := supervise.Run(ctx, quietCfg(), supervise.Job{
		Run: run, Resume: run, Cursor: advancingCursor(), GPUs: 4, Total: 9,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interruption not passed through: %v", err)
	}
	if rep.FinalState == supervise.Failed {
		t.Fatalf("interruption wrongly marked failed (resumable runs must not be)")
	}
	var giveUp *supervise.GiveUpError
	if errors.As(err, &giveUp) {
		t.Fatalf("interruption misclassified as give-up")
	}
	if res.Completed != 2 {
		t.Fatalf("partial result dropped: %+v", res)
	}
}

func TestSupervisorNonRecoverableFails(t *testing.T) {
	boom := errors.New("config exploded")
	run := func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		return engine.Result{}, boom
	}
	_, rep, err := supervise.Run(context.Background(), quietCfg(), supervise.Job{
		Run: run, Resume: run, Cursor: advancingCursor(), GPUs: 4, Total: 9,
	})
	if !errors.Is(err, boom) {
		t.Fatalf("non-recoverable error rewritten: %v", err)
	}
	if rep.FinalState != supervise.Failed || rep.Restarts != 0 {
		t.Fatalf("state=%v restarts=%d, want failed without restarts", rep.FinalState, rep.Restarts)
	}
}

func TestSupervisorJobValidation(t *testing.T) {
	ok := crashOn(0, 1, func(int) bool { return false }, nil)
	cur := advancingCursor()
	for name, job := range map[string]supervise.Job{
		"no-run":    {Resume: ok, Cursor: cur},
		"no-resume": {Run: ok, Cursor: cur},
		"no-cursor": {Run: ok, Resume: ok},
	} {
		_, rep, err := supervise.Run(context.Background(), quietCfg(), job)
		if err == nil {
			t.Errorf("%s: accepted an incomplete job", name)
		}
		if rep == nil || rep.FinalState != supervise.Failed {
			t.Errorf("%s: report = %+v, want failed", name, rep)
		}
	}
}

func TestSupervisorBackoffInterruptible(t *testing.T) {
	cfg := quietCfg()
	cfg.BackoffBase = 10 * time.Second
	cfg.BackoffMax = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	crashed := make(chan struct{})
	run := func(context.Context, int, *engine.RunProbe) (engine.Result, error) {
		close(crashed)
		return engine.Result{}, &fault.CrashError{Stage: 0}
	}
	go func() {
		<-crashed
		cancel()
	}()
	t0 := time.Now()
	_, _, err := supervise.Run(ctx, cfg, supervise.Job{
		Run: run, Resume: run, Cursor: advancingCursor(), GPUs: 4, Total: 9,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backoff returned %v", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("backoff ignored cancellation for %v", d)
	}
}

func TestSupervisorCursorErrorIsTerminal(t *testing.T) {
	run := crashOn(0, 9, func(int) bool { return true }, nil)
	_, rep, err := supervise.Run(context.Background(), quietCfg(), supervise.Job{
		Run: run, Resume: run,
		Cursor: func() (int, error) { return 0, errors.New("checkpoint corrupt") },
		GPUs:   4, Total: 9,
	})
	if err == nil || !strings.Contains(err.Error(), "checkpoint unreadable") {
		t.Fatalf("cursor failure not surfaced: %v", err)
	}
	if rep.FinalState != supervise.Failed {
		t.Fatalf("state=%v, want failed", rep.FinalState)
	}
}

// TestStallErrorAttribution pins the diagnosis heuristics on a seeded
// fixture: a wedged stage always wins; otherwise the blocked stage
// (head waiting on an unfinished writer) with the oldest completion.
func TestStallErrorAttribution(t *testing.T) {
	base := time.Now().UnixNano()
	stages := []engine.StageHealth{
		{Stage: 0, FwdDone: 9, BwdDone: 4, LastTaskNs: base - 100},
		{Stage: 1, FwdDone: 5, BwdDone: 4, QueueLen: 2, BlockedHead: 6, OwnerSubnet: 3, LastTaskNs: base - 500},
		{Stage: 2, FwdDone: 5, BwdDone: 5, QueueLen: 1, BlockedHead: 7, OwnerSubnet: 4, LastTaskNs: base - 200},
	}
	stall := &supervise.StallError{Incarnation: 1, Diag: supervise.StallDiagnosis{
		Frontier: 4, Tasks: 32, Quiet: 2 * time.Second, Stages: stages,
	}}
	if got := stall.BlockedStage(); got != 1 {
		t.Fatalf("blocked stage = %d, want 1 (oldest blocked head)", got)
	}
	msg := stall.Error()
	for _, frag := range []string{
		"no progress for 2s at incarnation 1",
		"stage 1: fwd 5 bwd 4",
		"head subnet 6 blocked by subnet 3",
		"diagnosis: stage 1 is the blocked stage",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("diagnosis lacks %q:\n%s", frag, msg)
		}
	}

	// A wedged stage trumps blocked-head attribution.
	stages[2].Wedged = true
	if got := stall.BlockedStage(); got != 2 {
		t.Fatalf("blocked stage = %d, want the wedged stage 2", got)
	}
	if !strings.Contains(stall.Error(), "WEDGED") {
		t.Errorf("wedged stage not flagged in diagnosis:\n%s", stall.Error())
	}
}

// TestWatchdogFiresOnFlatProbe drives the real watchdog against a probe
// nobody publishes to: both progress signals stay flat, so it must
// cancel the incarnation with a *StallError cause.
func TestWatchdogFiresOnFlatProbe(t *testing.T) {
	cfg := quietCfg()
	cfg.Watchdog = supervise.WatchdogConfig{Poll: time.Millisecond, StallAfter: 30 * time.Millisecond}
	cfg.CrashLoopWindow = 1
	run := func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		<-ctx.Done() // wedge: never publish, never finish
		return engine.Result{}, ctx.Err()
	}
	_, rep, err := supervise.Run(context.Background(), cfg, supervise.Job{
		Run: run, Resume: run, Cursor: func() (int, error) { return 0, nil }, GPUs: 4, Total: 9,
	})
	var giveUp *supervise.GiveUpError
	if !errors.As(err, &giveUp) {
		t.Fatalf("flat probe should end in crash-loop give-up, got %v", err)
	}
	if rep.WatchdogFires == 0 {
		t.Fatal("watchdog never fired on a flat probe")
	}
	if len(rep.Incidents) == 0 || rep.Incidents[0].Stall == nil {
		t.Fatalf("incident not attributed to a stall: %+v", rep.Incidents)
	}
}

// TestSupervisorHooks: Observer sees every recorded edge (in order) and
// OnIncident every incident, as the service metrics plane relies on.
func TestSupervisorHooks(t *testing.T) {
	var edges []supervise.Transition
	var incidents []supervise.Incident
	cfg := quietCfg()
	cfg.Observer = func(tr supervise.Transition) { edges = append(edges, tr) }
	cfg.OnIncident = func(in supervise.Incident) { incidents = append(incidents, in) }

	attempts := 0
	run := func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		attempts++
		if attempts == 1 {
			return engine.Result{}, &fault.CrashError{Stage: 1, Seq: 2, Kind: fault.KindForward}
		}
		return engine.Result{Completed: 9}, nil
	}
	_, rep, err := supervise.Run(context.Background(), cfg, supervise.Job{
		Run: run, Resume: run, Cursor: advancingCursor(), GPUs: 4, Total: 9,
	})
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if len(edges) != len(rep.Transitions) {
		t.Fatalf("observer saw %d edges, report has %d", len(edges), len(rep.Transitions))
	}
	for i, tr := range rep.Transitions {
		if edges[i] != tr {
			t.Fatalf("edge %d: observer %+v, report %+v", i, edges[i], tr)
		}
	}
	if len(incidents) != 1 || incidents[0].Stage != 1 {
		t.Fatalf("incidents = %+v, want one on stage 1", incidents)
	}
}
