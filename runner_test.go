package naspipe_test

import (
	"context"
	"strings"
	"testing"

	"naspipe"
)

func runnerCfg(gpus, n int) naspipe.Config {
	return naspipe.Config{
		Space:       naspipe.NLPc3.Scaled(8, 3),
		Spec:        naspipe.DefaultCluster(gpus),
		Seed:        3,
		NumSubnets:  n,
		RecordTrace: true,
	}
}

func TestRunnerDefaultsMatchRunPolicy(t *testing.T) {
	cfg := runnerCfg(4, 16)
	r, err := naspipe.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naspipe.RunPolicy(cfg, "naspipe")
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalMs != want.TotalMs || got.Completed != want.Completed ||
		!got.Trace.Equal(want.Trace) {
		t.Fatal("default Runner diverges from RunPolicy(naspipe)")
	}
}

func TestRunnerExecutorPlanesAgree(t *testing.T) {
	cfg := runnerCfg(4, 16)
	sim, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorSimulated))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorConcurrent))
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccRes, err := cc.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.Trace.PerLayerEqual(ccRes.Trace) {
		t.Fatal("execution planes disagree on the per-layer access order")
	}
	if ccRes.ObservedTrace == nil || len(ccRes.Contention) != ccRes.D {
		t.Fatal("concurrent plane did not report observed trace / contention")
	}
	if simRes.ObservedTrace != nil || simRes.Contention != nil {
		t.Fatal("simulated plane should not fill concurrent-only fields")
	}
}

func TestRunnerOptionValidation(t *testing.T) {
	if _, err := naspipe.NewRunner(naspipe.WithPolicy("bogus")); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := naspipe.NewRunner(
		naspipe.WithPolicy("gpipe"),
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
	); err == nil {
		t.Fatal("concurrent executor must reject non-CSP policies")
	} else if !strings.Contains(err.Error(), "CSP") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorKind(99))); err == nil {
		t.Fatal("unknown executor accepted")
	}
	if _, err := naspipe.NewRunner(naspipe.WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

func TestRunnerWithTraceOverride(t *testing.T) {
	cfg := runnerCfg(2, 8)
	cfg.RecordTrace = false
	r, err := naspipe.NewRunner(naspipe.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("WithTrace(true) did not force trace recording")
	}
}

func TestRunnerRunManyDeterministicOrder(t *testing.T) {
	cfgs := make([]naspipe.Config, 6)
	for i := range cfgs {
		cfgs[i] = runnerCfg(2+i%3, 8)
		cfgs[i].Seed = uint64(i + 1)
	}
	serial, err := naspipe.NewRunner(naspipe.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := naspipe.NewRunner(naspipe.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.RunMany(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fanned.RunMany(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TotalMs != b[i].TotalMs || a[i].Completed != b[i].Completed ||
			!a[i].Trace.Equal(b[i].Trace) {
			t.Fatalf("slot %d differs between worker counts", i)
		}
	}
}

func TestRunInvalidConfigsAreErrors(t *testing.T) {
	cfg := runnerCfg(4, 0)
	subs := naspipe.SampleSubnets(cfg.Space, cfg.Seed, 4)
	subs[2].Seq = 7 // gapped sequence IDs
	cfg.Subnets = subs
	if _, err := naspipe.RunPolicy(cfg, "naspipe"); err == nil {
		t.Fatal("gapped subnet stream accepted")
	}
	r, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorConcurrent))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), cfg); err == nil {
		t.Fatal("gapped subnet stream accepted by the concurrent plane")
	}
	bad := runnerCfg(4, 8)
	bad.Spec.GPUsPerHost = 0
	if _, err := naspipe.RunPolicy(bad, "naspipe"); err == nil {
		t.Fatal("invalid cluster spec accepted")
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := naspipe.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, runnerCfg(4, 64)); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAllExperimentsParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	o := naspipe.QuickExperimentOptions()
	o.Parallelism = 1
	serial := naspipe.AllExperiments(o)
	o.Parallelism = 4
	fanned, err := naspipe.AllExperimentsContext(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if serial != fanned {
		t.Fatal("parallel experiment harness changed the report output")
	}
}

func TestSearchContextCancellation(t *testing.T) {
	sp := naspipe.NLPc1.Scaled(6, 2)
	cfg := naspipe.TrainConfig{Space: sp, Dim: 8, Seed: 1, BatchSize: 2, LR: 0.05}
	subs := naspipe.SampleSubnets(sp, 1, 8)
	trained := naspipe.TrainSequential(cfg, subs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := naspipe.SearchContext(ctx, cfg, trained.Net, naspipe.DefaultSearch(1))
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Evaluated == 0 {
		t.Fatal("cancelled search should still return the seeded population")
	}
}

// TestRunnerMemoryPlaneOptions wires WithCache/WithPredictor end to end:
// the concurrent plane reports real cache traffic, the trace still equals
// the cache-less run's, and a predictor without an explicit cache defaults
// to the paper's factor 3.
func TestRunnerMemoryPlaneOptions(t *testing.T) {
	cfg := runnerCfg(4, 16)
	plain, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorConcurrent))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithPredictor(true), // no WithCache: factor defaults to 3
	)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := plain.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cached.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plainRes.CacheHitRate != -1 || plainRes.CacheStats != nil {
		t.Fatal("cache-less concurrent run reported cache traffic")
	}
	if res.CacheHitRate <= 0 || res.CacheHitRate > 1 {
		t.Fatalf("hit rate %v with predictor+default cache", res.CacheHitRate)
	}
	if len(res.CacheStats) != res.D || res.CachedParamBytes <= 0 {
		t.Fatalf("missing per-stage cache stats: %d rows, budget %d",
			len(res.CacheStats), res.CachedParamBytes)
	}
	if !res.Trace.Equal(plainRes.Trace) {
		t.Fatal("memory plane changed the canonical trace")
	}
}

// TestRunnerWithTelemetry attaches one bus to each executor in turn: both
// planes must publish the full task lifecycle to it (the simulated plane
// in simulated nanoseconds, the concurrent plane in wall-clock offsets),
// and a concurrent run with telemetry must surface reconstructed spans.
func TestRunnerWithTelemetry(t *testing.T) {
	cfg := runnerCfg(4, 16)
	for _, exec := range []naspipe.ExecutorKind{naspipe.ExecutorSimulated, naspipe.ExecutorConcurrent} {
		bus := naspipe.NewTelemetryBus(0)
		r, err := naspipe.NewRunner(naspipe.WithExecutor(exec), naspipe.WithTelemetry(bus))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap := bus.Snapshot()
		want := int64(2 * 16 * res.D)
		if snap.Started != want || snap.Completed != want {
			t.Fatalf("executor %v: bus counted %d/%d task starts/completions, want %d",
				exec, snap.Started, snap.Completed, want)
		}
		if snap.Dropped != 0 {
			t.Fatalf("executor %v: bus dropped %d events at default capacity", exec, snap.Dropped)
		}
		if exec == naspipe.ExecutorConcurrent && len(res.Spans) != int(want) {
			t.Fatalf("concurrent run with telemetry reconstructed %d spans, want %d",
				len(res.Spans), want)
		}
	}
}

// TestRunnerMemoryPlaneOptionValidation: the memory options belong to the
// concurrent plane and must reject nonsensical combinations at
// construction time.
func TestRunnerMemoryPlaneOptionValidation(t *testing.T) {
	if _, err := naspipe.NewRunner(naspipe.WithCache(3)); err == nil {
		t.Fatal("WithCache accepted on the simulated executor")
	} else if !strings.Contains(err.Error(), "concurrent") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := naspipe.NewRunner(naspipe.WithPredictor(true)); err == nil {
		t.Fatal("WithPredictor accepted on the simulated executor")
	}
	if _, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithCache(-2),
	); err == nil {
		t.Fatal("negative cache factor accepted")
	}
	if _, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithCache(0),
		naspipe.WithPredictor(true),
	); err == nil {
		t.Fatal("predictor with an explicitly disabled cache accepted")
	}
	if _, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithCache(0),
	); err != nil {
		t.Fatalf("WithCache(0) alone should be a valid no-op: %v", err)
	}
}
