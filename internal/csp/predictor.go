package csp

import "naspipe/internal/task"

// Fetch is a context-prefetch request emitted by the predictor: bring the
// layers of subnet Seq's partition on this stage into GPU memory before
// the corresponding task is scheduled.
type Fetch struct {
	Seq    int
	Kind   task.Kind
	Reason string // human-readable provenance, for logs and tests
}

// PendingBackward describes a backward task blocked at a later pipeline
// stage because the forward pass that produces its activations has not
// arrived there yet (itself delayed by a precedent causal dependency).
// Later stages pass these records upstream with backward transfers
// (Algorithm 3 lines 10–11), so that earlier stages can prefetch the
// backward's context the moment its releasing forward is scheduled.
type PendingBackward struct {
	Seq        int // the blocked backward's subnet
	Precedence int // the forward subnet whose scheduling releases it
}

// Predictor is Algorithm 3: it forecasts the tasks most likely to be
// scheduled next on this stage and turns them into prefetch requests. The
// paper's configuration forecasts the upcoming 2 tasks; combined with the
// subnet being executed and the one being evicted this yields the ~3x
// subnet cache footprint reported in Table 2.
type Predictor struct {
	sched   *Scheduler
	blocked []PendingBackward // the L_blocked global of Algorithm 3
}

// NewPredictor returns a predictor bound to a stage's scheduler.
func NewPredictor(s *Scheduler) *Predictor {
	return &Predictor{sched: s}
}

// PendingCount returns the number of tracked blocked backwards.
func (p *Predictor) PendingCount() int { return len(p.blocked) }

// Retire drops every pending record for the given subnet: once its
// backward has actually executed on this stage the forecast is moot.
// The concurrent plane calls this on backward execution so records whose
// releasing forward ran before the record arrived (a carry that lost the
// pipeline race) cannot accumulate.
func (p *Predictor) Retire(seq int) {
	kept := p.blocked[:0]
	for _, b := range p.blocked {
		if b.Seq != seq {
			kept = append(kept, b)
		}
	}
	p.blocked = kept
}

// OnBackward runs before executing backward recvSeq (Algorithm 1 line 6).
// It pre-adds the backward to a copy of the finished list, re-runs
// SCHEDULE, and prefetches the forward that becomes schedulable; it also
// records any pending backwards carried with the receive.
func (p *Predictor) OnBackward(queue []int, recvSeq int, carried []PendingBackward) []Fetch {
	var fetches []Fetch
	// Lines 4–9: L' = L_f + recv.id; the forward SCHEDULE would now pick
	// has the highest chance to be scheduled next.
	if _, fwd := p.sched.ScheduleAssuming(queue, recvSeq); fwd >= 0 {
		fetches = append(fetches, Fetch{Seq: fwd, Kind: task.Forward,
			Reason: "forward unblocked by backward completion"})
	}
	// Lines 10–11: remember blocked backwards announced by later stages.
	p.blocked = append(p.blocked, carried...)
	return fetches
}

// OnForward runs before executing forward currentSeq (Algorithm 1 line
// 21). If this forward releases a pending backward, that backward's
// context is prefetched and the record retired; then SCHEDULE re-runs to
// forecast the next forward.
func (p *Predictor) OnForward(queue []int, currentSeq int) []Fetch {
	var fetches []Fetch
	// Lines 13–15.
	kept := p.blocked[:0]
	for _, b := range p.blocked {
		if b.Precedence == currentSeq {
			fetches = append(fetches, Fetch{Seq: b.Seq, Kind: task.Backward,
				Reason: "backward released by this forward"})
		} else {
			kept = append(kept, b)
		}
	}
	p.blocked = kept
	// Lines 16–18.
	if _, fwd := p.sched.Schedule(queue); fwd >= 0 && fwd != currentSeq {
		fetches = append(fetches, Fetch{Seq: fwd, Kind: task.Forward,
			Reason: "next schedulable forward"})
	}
	return fetches
}
