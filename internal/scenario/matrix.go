package scenario

import (
	"fmt"
	"strings"
	"time"

	"naspipe"
	"naspipe/internal/fault"
)

// MatrixCell builds the scenario equivalent of one historical
// crash/supervised matrix cell: the workload TestCrashResumeMatrix and
// TestSupervisedCrashMatrix always ran (NLP.c3 scaled 8×3, seed 7, 18
// subnets, the dim-8 WNMT training plane) under the given fault
// schedule at the given pipeline depth. Targeted sites whose stage is
// beyond the depth are folded back with stage %= gpus, exactly as the
// old tables did, so one schedule stresses every depth.
//
// supervised selects the recovery discipline: the supervision plane
// with the matrices' generous test budgets, or the harness's operator
// resume loop. Both disciplines must reach the same verdict — the thin
// wrappers left at the repo root prove they still do.
func MatrixCell(name, faultSpec string, gpus int, supervised bool) (*Scenario, error) {
	plan, err := fault.ParsePlan(faultSpec)
	if err != nil {
		return nil, err
	}
	if plan.CrashTask != nil {
		plan.CrashTask.Stage %= gpus
	}
	if plan.WedgeTask != nil {
		plan.WedgeTask.Stage %= gpus
	}
	for i := range plan.Storm {
		plan.Storm[i].Task.Stage %= gpus
	}

	s := &Scenario{
		Name: matrixSlug(fmt.Sprintf("%s-gpus%d", name, gpus)),
		World: World{
			GPUs: gpus,
		},
		Workload: Workload{
			Space:       "NLP.c3",
			ScaleBlocks: 8, ScaleChoices: 3,
			Subnets: 18,
			Seed:    7,
			Train:   &naspipe.TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05, Dataset: "WNMT"},
		},
		Storm: &Storm{Faults: plan.String()},
	}
	if supervised {
		// The matrices' historical test budgets: rate-based schedules can
		// crash dozens of times, and the sweep wants microsecond backoffs.
		s.Storm.Supervise = &naspipe.SuperviseSpec{
			MaxRestarts:     60,
			CrashLoopWindow: 25,
			Backoff:         naspipe.Duration(100 * time.Microsecond),
			BackoffMax:      naspipe.Duration(time.Millisecond),
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// matrixSlug lowers a free-form cell name onto the scenario name
// grammar ([a-z0-9-]).
func matrixSlug(name string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
