// Package sched implements the scheduling policies the paper evaluates on
// the engine: NASPipe's CSP (with its three ablations), GPipe's BSP,
// PipeDream's ASP (1F1B), VPipe, and a sequential reference.
//
// A policy instance is stateful and single-use: construct a fresh one per
// engine.Run.
package sched

import (
	"naspipe/internal/csp"
	"naspipe/internal/engine"
)

// NASPipeOptions toggle the three components ablated in §5.3.
type NASPipeOptions struct {
	// Reorder enables Algorithm 2's queue scan (the "scheduler"
	// component). Disabled, forwards are admitted strictly FIFO and a
	// blocked head stalls the stage (NASPipe w/o scheduler).
	Reorder bool
	// Predictor enables context switching with Algorithm 3 prefetch.
	// Disabled, the whole supernet stays in GPU memory (NASPipe w/o
	// predictor), shrinking the batch.
	Predictor bool
	// Mirroring enables per-subnet balanced partitions (NASPipe w/o
	// mirroring falls back to the static partition).
	Mirroring bool
	// CacheFactor sizes the parameter cache in subnet-partition multiples
	// when Predictor is on. The paper's configuration is 3 (current +
	// previous + prefetched).
	CacheFactor float64
}

// DefaultNASPipeOptions returns the paper's configuration.
func DefaultNASPipeOptions() NASPipeOptions {
	return NASPipeOptions{Reorder: true, Predictor: true, Mirroring: true, CacheFactor: 3}
}

// CSPPolicy is NASPipe's causal synchronous parallel policy.
type CSPPolicy struct {
	engine.BasePolicy
	name   string
	opts   NASPipeOptions
	w      *engine.World
	scheds []*csp.Scheduler
	preds  []*csp.Predictor
}

// NewNASPipe returns the full NASPipe policy.
func NewNASPipe() *CSPPolicy {
	return &CSPPolicy{name: "NASPipe", opts: DefaultNASPipeOptions()}
}

// NewNASPipeWith returns a named NASPipe variant with the given options
// (used for the §5.3 ablations).
func NewNASPipeWith(name string, opts NASPipeOptions) *CSPPolicy {
	if opts.CacheFactor <= 0 && opts.Predictor {
		opts.CacheFactor = 3
	}
	return &CSPPolicy{name: name, opts: opts}
}

// Traits implements engine.Policy.
func (p *CSPPolicy) Traits() engine.Traits {
	t := engine.Traits{
		Name:              p.name,
		Reproducible:      true,
		Partition:         engine.PartitionBalanced,
		UsePredictor:      p.opts.Predictor,
		PrefetchOnArrival: p.opts.Predictor,
		ActStashFactor:    1,
	}
	if !p.opts.Mirroring {
		t.Partition = engine.PartitionStatic
	}
	if p.opts.Predictor {
		t.CacheFactor = p.opts.CacheFactor
	} else {
		t.CacheFactor = 0 // whole supernet resident
	}
	return t
}

// Init implements engine.Policy: one decentralized scheduler (and
// predictor) per stage, all subnets registered in sequence order.
func (p *CSPPolicy) Init(w *engine.World) {
	p.w = w
	p.scheds = make([]*csp.Scheduler, w.D)
	p.preds = make([]*csp.Predictor, w.D)
	for k := 0; k < w.D; k++ {
		s := csp.New(k)
		for i := range w.Subnets {
			if err := s.AddSubnet(csp.SubnetInfo{
				Seq:         i,
				AllLayers:   w.AllLayerIDs(i),
				StageLayers: w.StageLayerIDs(i, k),
			}); err != nil {
				panic(err)
			}
		}
		p.scheds[k] = s
		p.preds[k] = csp.NewPredictor(s)
	}
}

// SelectBackward prefers the lowest sequence ID (backward tasks always
// carry the highest priority, §3.2 heuristic 1).
func (p *CSPPolicy) SelectBackward(stage int, ready []int, now float64) int {
	if len(ready) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(ready); i++ {
		if ready[i] < ready[best] {
			best = i
		}
	}
	return best
}

// SelectForward runs Algorithm 2 over the stage queue; without Reorder it
// degenerates to head-of-line FIFO with dependency stalls.
func (p *CSPPolicy) SelectForward(stage int, queue []int, now float64) int {
	if len(queue) == 0 {
		return -1
	}
	if !p.opts.Reorder {
		if p.scheds[stage].Blocked(queue[0]) {
			return -1
		}
		return 0
	}
	qidx, _ := p.scheds[stage].Schedule(queue)
	return qidx
}

// OnBackwardDone broadcasts the stage's completed WRITEs to every stage's
// scheduler (the mirroring push of §4.2 doubles as the dependency-release
// notification), and retires the subnet once its backward reaches stage 0.
func (p *CSPPolicy) OnBackwardDone(stage, seq int, now float64) {
	written := p.w.StageLayerIDs(seq, stage)
	for _, s := range p.scheds {
		s.MarkWritten(seq, written)
	}
	if stage == 0 {
		for _, s := range p.scheds {
			s.MarkFinished(seq)
		}
	}
}

// PredictBackward implements the Algorithm 3 call before a backward pass.
func (p *CSPPolicy) PredictBackward(stage int, queue []int, seq int, now float64) []int {
	return fetchSeqs(p.preds[stage].OnBackward(queue, seq, nil))
}

// PredictForward implements the Algorithm 3 call before a forward pass.
func (p *CSPPolicy) PredictForward(stage int, queue []int, seq int, now float64) []int {
	return fetchSeqs(p.preds[stage].OnForward(queue, seq))
}

func fetchSeqs(fetches []csp.Fetch) []int {
	if len(fetches) == 0 {
		return nil
	}
	out := make([]int, len(fetches))
	for i, f := range fetches {
		out[i] = f.Seq
	}
	return out
}

// Guard: CSPPolicy must satisfy engine.Policy.
var _ engine.Policy = (*CSPPolicy)(nil)
