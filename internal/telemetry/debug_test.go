package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func snapshotFrom(t *testing.T, addr string) Snapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeDebugPerServer is the regression test for the package-level
// debugBus swap: two live debug servers must each report their own bus,
// and starting the second must not repoint the first.
func TestServeDebugPerServer(t *testing.T) {
	b1 := NewBus(16)
	b1.Emit(Event{Op: OpTaskStart})
	addr1, stop1, err := ServeDebug("127.0.0.1:0", b1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop1()

	b2 := NewBus(16)
	for i := 0; i < 3; i++ {
		b2.Emit(Event{Op: OpTaskStart})
	}
	addr2, stop2, err := ServeDebug("127.0.0.1:0", b2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()

	if got := snapshotFrom(t, addr1).Started; got != 1 {
		t.Fatalf("server 1 reports Started=%d, want 1 (its own bus)", got)
	}
	if got := snapshotFrom(t, addr2).Started; got != 3 {
		t.Fatalf("server 2 reports Started=%d, want 3 (its own bus)", got)
	}
}

// TestServeDebugNilFollowsPublishBus pins the legacy late-publish path:
// a server started with a nil bus follows PublishBus swaps.
func TestServeDebugNilFollowsPublishBus(t *testing.T) {
	defer PublishBus(nil)
	addr, stop, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if got := snapshotFrom(t, addr).Started; got != 0 {
		t.Fatalf("pre-publish snapshot Started=%d, want 0", got)
	}
	b := NewBus(16)
	b.Emit(Event{Op: OpTaskStart})
	b.Emit(Event{Op: OpTaskStart})
	PublishBus(b)
	if got := snapshotFrom(t, addr).Started; got != 2 {
		t.Fatalf("post-publish snapshot Started=%d, want 2", got)
	}
}

// TestNewDebugMuxSnapshotClosure: a daemon-style aggregating closure is
// evaluated per request.
func TestNewDebugMuxSnapshotClosure(t *testing.T) {
	b1, b2 := NewBus(16), NewBus(16)
	mux := NewDebugMux(func() Snapshot { return b1.Snapshot().Add(b2.Snapshot()) })
	b1.Emit(Event{Op: OpTaskComplete})
	b2.Emit(Event{Op: OpTaskComplete})
	b2.Emit(Event{Op: OpFaultCrash})

	srv := httptest.NewServer(mux)
	defer srv.Close()
	s := snapshotFrom(t, strings.TrimPrefix(srv.URL, "http://"))
	if s.Completed != 2 || s.Crashes != 1 {
		t.Fatalf("aggregated snapshot = %+v, want Completed=2 Crashes=1", s)
	}
}

// TestSnapshotAdd: field-wise sum, ElapsedNs max.
func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{ElapsedNs: 5, Emitted: 2, Dropped: 1, BatchFlushes: 3, Started: 4, StallNs: 7}
	b := Snapshot{ElapsedNs: 9, Emitted: 10, Completed: 6, HealthTransitions: 2}
	s := a.Add(b)
	if s.ElapsedNs != 9 {
		t.Fatalf("ElapsedNs = %d, want max 9", s.ElapsedNs)
	}
	if s.Emitted != 12 || s.Dropped != 1 || s.BatchFlushes != 3 || s.Started != 4 ||
		s.Completed != 6 || s.StallNs != 7 || s.HealthTransitions != 2 {
		t.Fatalf("Add = %+v", s)
	}
}

// TestEmitBatchCountsFlushes: the bus counts bulk flushes so the
// service registry can expose Batcher flush rates.
func TestEmitBatchCountsFlushes(t *testing.T) {
	b := NewBus(16)
	b.EmitBatch([]Event{{Op: OpTaskStart}, {Op: OpTaskComplete}})
	b.EmitBatch(nil) // empty batches are not flushes
	b.EmitBatch([]Event{{Op: OpTaskComplete}})
	if got := b.Snapshot().BatchFlushes; got != 2 {
		t.Fatalf("BatchFlushes = %d, want 2", got)
	}
	var nilBus *Bus
	nilBus.EmitBatch([]Event{{Op: OpTaskStart}})
	if nilBus.Snapshot().BatchFlushes != 0 {
		t.Fatal("nil bus counted a flush")
	}
}
