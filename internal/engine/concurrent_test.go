package engine_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/supernet"
	"naspipe/internal/telemetry"
	"naspipe/internal/train"
)

// ccCfg is the shared configuration of the equivalence matrix: a scaled
// space small enough for numeric replay, dependency-dense enough that CSP
// admission actually blocks subnets.
func ccCfg(d int, jitter bool) engine.Config {
	cfg := engine.Config{
		Space:       supernet.NLPc3.Scaled(8, 3),
		Spec:        cluster.Default(d),
		Seed:        7,
		NumSubnets:  18,
		RecordTrace: true,
	}
	if jitter {
		cfg.TimingJitter = 0.3
		cfg.JitterSeed = 11
	}
	return cfg
}

// TestConcurrentTraceEquivalenceMatrix is the PR's core guarantee: across
// pipeline depths and with timing jitter on or off, the concurrent
// executor's trace is bitwise-equal to the sequential reference (as
// produced by the simulator's sequential policy), its observed raw
// interleaving projects to the same per-layer order, and replaying either
// trace through the numeric trainer lands on bitwise-identical weights.
func TestConcurrentTraceEquivalenceMatrix(t *testing.T) {
	for _, d := range []int{1, 2, 4, 8} {
		for _, jitter := range []bool{false, true} {
			t.Run(fmt.Sprintf("gpus=%d/jitter=%v", d, jitter), func(t *testing.T) {
				cfg := ccCfg(d, jitter)
				seq := run(t, "sequential", cfg)
				if seq.Failed {
					t.Fatalf("sequential reference failed: %s", seq.FailReason)
				}
				sim := run(t, "naspipe", cfg)
				if sim.Failed {
					t.Fatalf("simulated naspipe failed: %s", sim.FailReason)
				}
				cc, err := engine.RunConcurrent(context.Background(), cfg)
				if err != nil {
					t.Fatalf("concurrent run: %v", err)
				}
				if cc.Completed != cfg.NumSubnets {
					t.Fatalf("concurrent completed %d/%d", cc.Completed, cfg.NumSubnets)
				}
				if !cc.Trace.Equal(seq.Trace) {
					t.Fatal("concurrent canonical trace diverges from sequential reference")
				}
				if cc.ObservedTrace == nil {
					t.Fatal("no observed trace recorded")
				}
				if !cc.ObservedTrace.PerLayerEqual(seq.Trace) {
					t.Fatal("observed per-layer access order diverges from sequential reference")
				}
				if !sim.Trace.PerLayerEqual(cc.Trace) {
					t.Fatal("simulated and concurrent planes disagree on per-layer order")
				}

				// Numeric ground truth: all three schedules replay to the
				// bitwise-identical weights of strict sequential training.
				tc := train.Config{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
					BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
				subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
				want := train.Sequential(tc, subs).Checksum
				for name, tr := range map[string]*engine.Result{
					"sequential-sim": &seq, "naspipe-sim": &sim, "concurrent": &cc,
				} {
					got, err := train.Replay(tc, subs, tr.Trace)
					if err != nil {
						t.Fatalf("%s replay: %v", name, err)
					}
					if got.Checksum != want {
						t.Fatalf("%s replay checksum %016x, want %016x", name, got.Checksum, want)
					}
				}
			})
		}
	}
}

// TestConcurrentStableAcrossGOMAXPROCS pins Definition 1 against the Go
// scheduler itself: the canonical trace (and hence the training result)
// is identical whether the stage goroutines run on one core or all of
// them.
func TestConcurrentStableAcrossGOMAXPROCS(t *testing.T) {
	cfg := ccCfg(4, true)
	ref, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		got, err := engine.RunConcurrent(context.Background(), cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if !got.Trace.Equal(ref.Trace) {
			t.Fatalf("GOMAXPROCS=%d changed the canonical trace", procs)
		}
		if !got.ObservedTrace.PerLayerEqual(ref.Trace) {
			t.Fatalf("GOMAXPROCS=%d violated the per-layer order", procs)
		}
	}
}

// TestConcurrentRepeatedRunsDeterministic hammers the executor: many
// back-to-back runs under jitter must all verify and produce the same
// canonical trace (the observed interleavings are free to differ).
func TestConcurrentRepeatedRunsDeterministic(t *testing.T) {
	cfg := ccCfg(4, true)
	cfg.NumSubnets = 12
	ref, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got, err := engine.RunConcurrent(context.Background(), cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !got.Trace.Equal(ref.Trace) {
			t.Fatalf("run %d changed the canonical trace", i)
		}
	}
}

// TestConcurrentContentionCounters checks the per-stage instrumentation:
// every stage reports one forward and one backward task per subnet, and
// cross-stage notifications flow on multi-stage pipelines.
func TestConcurrentContentionCounters(t *testing.T) {
	cfg := ccCfg(4, false)
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contention) != res.D {
		t.Fatalf("contention rows %d, want %d", len(res.Contention), res.D)
	}
	for _, c := range res.Contention {
		if c.Tasks != int64(2*cfg.NumSubnets) {
			t.Fatalf("stage %d ran %d tasks, want %d", c.Stage, c.Tasks, 2*cfg.NumSubnets)
		}
	}
	var notes int64
	for _, c := range res.Contention {
		notes += c.Notes
	}
	// Every backward broadcasts to the other D-1 stages, but a stage that
	// has finished its own work exits without applying late notifications,
	// so the applied count is bounded, not exact.
	max := int64(cfg.NumSubnets * res.D * (res.D - 1))
	if notes == 0 || notes > max {
		t.Fatalf("total notes %d, want in (0, %d]", notes, max)
	}
}

// TestConcurrentCancellation: a pre-cancelled context returns promptly
// with a partial result and ctx.Err().
func TestConcurrentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := engine.RunConcurrent(ctx, ccCfg(4, false))
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Completed != 0 || !res.Deadlock {
		t.Fatalf("cancelled run reported %d completed, deadlock=%v", res.Completed, res.Deadlock)
	}
}

// TestConcurrentInvalidSpec: config validation errors, not panics.
func TestConcurrentInvalidSpec(t *testing.T) {
	cfg := ccCfg(2, false)
	cfg.Spec.GPUsPerHost = 0
	if _, err := engine.RunConcurrent(context.Background(), cfg); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// BenchmarkConcurrentExecutor measures the real-goroutine pipeline.
func BenchmarkConcurrentExecutor(b *testing.B) {
	cfg := ccCfg(4, false)
	cfg.RecordTrace = false
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunConcurrent(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentTelemetry is the same pipeline with the telemetry
// plane live: the per-stage batched publish path, which is where
// high-rate task/flow events would otherwise serialize every stage on
// the bus mutex.
func BenchmarkConcurrentTelemetry(b *testing.B) {
	cfg := ccCfg(4, false)
	cfg.RecordTrace = false
	for i := 0; i < b.N; i++ {
		cfg.Telemetry = telemetry.NewBus(1 << 16)
		if _, err := engine.RunConcurrent(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ccMemCfg is ccCfg plus the paper's memory-context configuration: cache
// factor 3 (executing + evicting + prefetched subnet) with the Algorithm 3
// predictor driving prefetch.
func ccMemCfg(d int, jitter bool) engine.Config {
	cfg := ccCfg(d, jitter)
	cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: 3, Predictor: true}
	return cfg
}

// TestConcurrentMemoryPlaneMatrix drives the predictor and per-stage
// caches across pipeline depths and jitter, checking the PR's central
// claim: prefetching moves data, never scheduling — the canonical trace
// (and the per-layer projection of the observed one) is identical to a
// cache-less run, while the cache reports real hit traffic and the
// Algorithm 3 carry path (pending-backward records travelling upstream
// with gradients) demonstrably fires.
func TestConcurrentMemoryPlaneMatrix(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		for _, jitter := range []bool{false, true} {
			t.Run(fmt.Sprintf("gpus=%d/jitter=%v", d, jitter), func(t *testing.T) {
				plain, err := engine.RunConcurrent(context.Background(), ccCfg(d, jitter))
				if err != nil {
					t.Fatalf("cache-less reference: %v", err)
				}
				cfg := ccMemCfg(d, jitter)
				res, err := engine.RunConcurrent(context.Background(), cfg)
				if err != nil {
					t.Fatalf("memory-plane run: %v", err)
				}
				if res.Completed != cfg.NumSubnets {
					t.Fatalf("completed %d/%d", res.Completed, cfg.NumSubnets)
				}
				if !res.Trace.Equal(plain.Trace) {
					t.Fatal("enabling the cache changed the canonical trace")
				}
				if !res.ObservedTrace.PerLayerEqual(plain.Trace) {
					t.Fatal("observed per-layer order diverges under the memory plane")
				}
				if len(res.CacheStats) != d {
					t.Fatalf("cache stats rows %d, want %d", len(res.CacheStats), d)
				}
				var hits, misses, prefetches int
				for _, s := range res.CacheStats {
					hits += s.Hits
					misses += s.Misses
					prefetches += s.Prefetches
				}
				if hits+misses == 0 || prefetches == 0 {
					t.Fatalf("cache saw no traffic: hits=%d misses=%d prefetches=%d",
						hits, misses, prefetches)
				}
				if res.CacheHitRate <= 0 || res.CacheHitRate > 1 {
					t.Fatalf("hit rate %v out of range", res.CacheHitRate)
				}
				if want := float64(hits) / float64(hits+misses); res.CacheHitRate != want {
					t.Fatalf("aggregate hit rate %v inconsistent with stage stats %v",
						res.CacheHitRate, want)
				}
				var carried int64
				for _, c := range res.Contention {
					carried += c.Carried
				}
				if c0 := res.Contention[0].Carried; c0 != 0 {
					t.Fatalf("stage 0 carried %d records upstream of itself", c0)
				}
				// Deeper pipelines make the carry path (Algorithm 3 lines
				// 10–11) unavoidable: blocked forwards pile up at later
				// stages while their releasing writers are still in flight.
				if d >= 4 && carried == 0 {
					t.Fatal("no pending-backward records carried upstream")
				}
			})
		}
	}
}

// TestConcurrentCacheHitRateMeetsPaperTarget pins Table 2's headline on
// the default bench workload: with the Algorithm 3 predictor and a
// 3-subnet cache footprint, the prefetcher keeps the hit rate at or above
// 85% while the causal trace stays intact.
func TestConcurrentCacheHitRateMeetsPaperTarget(t *testing.T) {
	cfg := ccMemCfg(8, true)
	cfg.NumSubnets = 48
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHitRate < 0.85 {
		t.Fatalf("hit rate %.3f below the paper's ~0.9 target (want >= 0.85)", res.CacheHitRate)
	}
	if res.CachedParamBytes <= 0 || res.CachedParamBytes >= res.SupernetBytes {
		t.Fatalf("cache budget %d not a strict subset of the supernet (%d bytes)",
			res.CachedParamBytes, res.SupernetBytes)
	}
	if res.CPUMemBytes != res.SupernetBytes {
		t.Fatalf("CPU stash %d, want whole supernet %d", res.CPUMemBytes, res.SupernetBytes)
	}
	if res.StallMs < 0 {
		t.Fatalf("negative stall time %v", res.StallMs)
	}
}

// TestConcurrentCacheWithoutPredictor: the cache alone (arrival-driven
// prefetch only) still runs to completion with a verified trace and
// carries no Algorithm 3 records.
func TestConcurrentCacheWithoutPredictor(t *testing.T) {
	cfg := ccCfg(4, false)
	cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: 3}
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHitRate <= 0 {
		t.Fatalf("arrival-driven prefetch earned no hits: %v", res.CacheHitRate)
	}
	for _, c := range res.Contention {
		if c.Carried != 0 {
			t.Fatalf("stage %d carried %d records with the predictor off", c.Stage, c.Carried)
		}
	}
}

// TestConcurrentCacheDisabledKeepsMemoryFieldsInert: PR 1 behaviour is
// preserved when ConcurrentMem is zero — no cache stats, N/A hit rate.
func TestConcurrentCacheDisabledKeepsMemoryFieldsInert(t *testing.T) {
	res, err := engine.RunConcurrent(context.Background(), ccCfg(2, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHitRate != -1 {
		t.Fatalf("hit rate %v, want -1 (N/A)", res.CacheHitRate)
	}
	if res.CacheStats != nil || res.DroppedPrefetches != 0 || res.StallMs != 0 {
		t.Fatalf("memory fields not inert: %+v", res.CacheStats)
	}
}

// TestConcurrentMemConfigValidation: the predictor needs a cache to
// prefetch into, and negative knobs are rejected.
func TestConcurrentMemConfigValidation(t *testing.T) {
	cfg := ccCfg(2, false)
	cfg.ConcurrentMem = engine.MemPlaneConfig{Predictor: true}
	if _, err := engine.RunConcurrent(context.Background(), cfg); err == nil {
		t.Fatal("predictor without a cache accepted")
	}
	cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: -1}
	if _, err := engine.RunConcurrent(context.Background(), cfg); err == nil {
		t.Fatal("negative cache factor accepted")
	}
	cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: 3, FetchMsScale: -0.5}
	if _, err := engine.RunConcurrent(context.Background(), cfg); err == nil {
		t.Fatal("negative fetch scale accepted")
	}
}

// TestConcurrentMemoryPlaneDeterministicTrace: repeated memory-plane runs
// under jitter keep producing the same canonical trace — the cache cannot
// leak nondeterminism into the schedule.
func TestConcurrentMemoryPlaneDeterministicTrace(t *testing.T) {
	cfg := ccMemCfg(4, true)
	cfg.NumSubnets = 12
	ref, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := engine.RunConcurrent(context.Background(), cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !got.Trace.Equal(ref.Trace) {
			t.Fatalf("run %d changed the canonical trace", i)
		}
	}
}
