// Quickstart: simulate pipeline-parallel supernet training with NASPipe's
// causal synchronous parallel (CSP) scheduler and compare it against the
// GPipe baseline on the same workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"naspipe"
)

func main() {
	// Pick a Table-1 search space and the paper's 8-GPU testbed.
	space := naspipe.NLPc1
	cfg := naspipe.Config{
		Space:      space,
		Spec:       naspipe.DefaultCluster(8),
		Seed:       1,
		NumSubnets: 120,
	}

	fmt.Printf("search space %s: %d choice blocks x %d candidate layers (%s)\n\n",
		space.Name, space.Blocks, space.Choices, space.Dataset)

	for _, policy := range []string{"naspipe", "gpipe"} {
		res, err := naspipe.RunPolicy(cfg, policy)
		if err != nil {
			log.Fatal(err)
		}
		if res.Failed {
			fmt.Printf("%-8s cannot run: %s\n", res.Policy, res.FailReason)
			continue
		}
		repro := "NOT reproducible"
		p, _ := naspipe.NewPolicy(policy)
		if p.Traits().Reproducible {
			repro = "reproducible (CSP)"
		}
		fmt.Printf("%-8s batch=%-3d  %6.0f samples/s  bubble=%.2f  ALU=%.2fx  %s\n",
			res.Policy, res.Batch, res.SamplesPerSec, res.BubbleRatio, res.ALUTotal, repro)
	}

	fmt.Println("\nNASPipe evicts inactive subnet contexts to CPU memory, which buys a")
	fmt.Println("much larger batch (higher GPU efficiency) while deterministically")
	fmt.Println("resolving every causal dependency between subnets.")
}
