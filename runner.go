package naspipe

import (
	"context"
	"errors"
	"fmt"

	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/parallel"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/telemetry"
	"naspipe/internal/train"
)

// ExecutorKind selects which execution plane a Runner drives.
type ExecutorKind int

const (
	// ExecutorSimulated runs on the deterministic discrete-event
	// simulator: full memory model (batch sizing, context cache, swap),
	// any scheduling policy, simulated time.
	ExecutorSimulated ExecutorKind = iota
	// ExecutorConcurrent runs on the goroutine-per-stage CSP executor:
	// every pipeline stage is a real goroutine, activations/gradients
	// flow over channels, and each stage admits work through its own CSP
	// scheduler. Wall-clock timing, race-clean, and — the point —
	// provably order-deterministic: the run fails if the observed
	// per-layer access order ever diverges from the sequential reference.
	// Only the "naspipe" (CSP) policy is available on this plane.
	ExecutorConcurrent
)

// String names the executor kind for reports and errors.
func (k ExecutorKind) String() string {
	switch k {
	case ExecutorSimulated:
		return "simulated"
	case ExecutorConcurrent:
		return "concurrent"
	}
	return fmt.Sprintf("ExecutorKind(%d)", int(k))
}

// Runner is the configured entry point for pipeline training runs. Build
// one with NewRunner and functional options; the zero configuration is
// the paper's default (CSP policy on the simulated plane):
//
//	r, err := naspipe.NewRunner(
//	        naspipe.WithPolicy("naspipe"),
//	        naspipe.WithExecutor(naspipe.ExecutorConcurrent),
//	        naspipe.WithTrace(true),
//	)
//	res, err := r.Run(ctx, cfg)
//
// A Runner is immutable after construction and safe for concurrent use;
// it builds a fresh policy instance per run.
type Runner struct {
	policy      string
	executor    ExecutorKind
	trace       bool
	traceSet    bool
	parallelism int
	cacheFactor float64
	cacheSet    bool
	predictor   bool
	tel         *telemetry.Bus

	faults    *fault.Plan
	ckptPath  string
	ckptEvery int
	trainCfg  *train.Config
	elastic   bool
}

// RunnerOption configures a Runner under construction.
type RunnerOption func(*Runner)

// WithPolicy selects the scheduling policy by name (see PolicyNames).
// Default: "naspipe".
func WithPolicy(name string) RunnerOption {
	return func(r *Runner) { r.policy = name }
}

// WithExecutor selects the execution plane. Default: ExecutorSimulated.
func WithExecutor(kind ExecutorKind) RunnerOption {
	return func(r *Runner) { r.executor = kind }
}

// WithTrace forces parameter-access trace recording on or off for every
// run, overriding Config.RecordTrace. Unset, Config.RecordTrace decides.
func WithTrace(record bool) RunnerOption {
	return func(r *Runner) { r.trace = record; r.traceSet = true }
}

// WithParallelism bounds the worker pool RunMany uses to fan out
// independent runs. Zero (the default) means GOMAXPROCS.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.parallelism = n }
}

// WithCache gives every concurrent-plane stage a prefetching layer cache
// provisioned at factor × the stage's average subnet-partition footprint
// (the paper's configuration is 3: executing + evicting + prefetched
// subnet). Factor 0 disables the cache. Overrides Config.ConcurrentMem.
// Concurrent executor only.
func WithCache(factor float64) RunnerOption {
	return func(r *Runner) { r.cacheFactor = factor; r.cacheSet = true }
}

// WithPredictor enables the Algorithm 3 context predictor on the
// concurrent plane: each stage forecasts upcoming tasks (including
// pending-backward records carried upstream with gradients) and prefetches
// their contexts. Requires a cache; if WithCache is not given, the paper's
// factor 3 is used. Concurrent executor only.
func WithPredictor(on bool) RunnerOption {
	return func(r *Runner) { r.predictor = on }
}

// WithTelemetry attaches a telemetry bus: every run publishes its
// structured event stream (task spans, scheduler decisions, cache
// traffic, transfer flows) to it, on either executor, overriding
// Config.Telemetry. Nil (the default) leaves telemetry to the Config.
// Span timestamps are offsets from the bus's construction, so a bus
// created just before the run gives the cleanest timelines.
func WithTelemetry(bus *telemetry.Bus) RunnerOption {
	return func(r *Runner) { r.tel = bus }
}

// WithFaults activates the deterministic fault-injection plane for every
// run: seed-driven stage crashes at task boundaries, dropped/delayed/
// duplicated cross-stage messages with bounded retry and exponential
// backoff, and prefetch-copy failures surfaced as cache misses. Build a
// plan directly or with ParseFaultPlan. Concurrent executor only.
func WithFaults(plan *FaultPlan) RunnerOption {
	return func(r *Runner) { r.faults = plan }
}

// WithCheckpoint persists crash-consistent checkpoints to path as the
// pipeline's committed frontier advances, and enables Resume from that
// file. Run starts fresh (overwriting path); Resume continues from it.
// Concurrent executor only.
func WithCheckpoint(path string) RunnerOption {
	return func(r *Runner) { r.ckptPath = path }
}

// WithCheckpointEvery throttles checkpoint persistence to one save per n
// cursor advances (default 1 = every advance; the final cut is always
// saved). Requires WithCheckpoint.
func WithCheckpointEvery(n int) RunnerOption {
	return func(r *Runner) { r.ckptEvery = n }
}

// WithCheckpointTraining attaches a numeric training config to the
// checkpoint plane: every saved checkpoint then carries the FNV-64
// weight checksum of the committed sequential prefix, and Resume
// verifies the stream against it before continuing. Requires
// WithCheckpoint; costs one incremental training step per committed
// subnet at save time.
func WithCheckpointTraining(tc TrainConfig) RunnerOption {
	return func(r *Runner) { r.trainCfg = &tc }
}

// WithElasticResume allows Resume to re-partition an interrupted run
// across a different GPU count than the checkpoint recorded: the GPU
// identity check is relaxed, the suffix is re-partitioned at the
// config's depth, and the checkpoint is rewritten to the new depth.
// Legal under CSP — Definition 1 orders parameter accesses by subnet
// sequence, not stage count, so the re-partitioned suffix still
// composes bitwise with the committed prefix. The supervision plane's
// elastic degraded-mode recovery requires it. Requires WithCheckpoint.
func WithElasticResume() RunnerOption {
	return func(r *Runner) { r.elastic = true }
}

// NewRunner validates the option set and returns an immutable Runner.
// Validation delegates to the JobSpec invariant kernel (optionFacts),
// so the functional options, the CLI flag sets, and the service API all
// enforce exactly the same rules.
func NewRunner(opts ...RunnerOption) (*Runner, error) {
	r := &Runner{policy: "naspipe"}
	for _, opt := range opts {
		opt(r)
	}
	facts := optionFacts{
		policy:      r.policy,
		executor:    r.executor,
		parallelism: r.parallelism,
		cacheSet:    r.cacheSet,
		cacheFactor: r.cacheFactor,
		predictor:   r.predictor,
		faults:      r.faults,
		ckptPath:    r.ckptPath,
		ckptEvery:   r.ckptEvery,
		haveTrain:   r.trainCfg != nil,
		elastic:     r.elastic,
	}
	if err := facts.validate(); err != nil {
		return nil, fmt.Errorf("naspipe: %w", err)
	}
	// trainCfg without a checkpoint path has nothing to checksum; the
	// kernel folds it into the checkpoint-refinement rule.
	if r.trainCfg != nil && r.ckptPath == "" {
		return nil, fmt.Errorf("naspipe: %w", &specErr{Field: "checkpoint", Msg: "WithCheckpointTraining refines WithCheckpoint, which is not set"})
	}
	if r.predictor && !r.cacheSet {
		r.cacheFactor = 3 // the paper's default footprint
		r.cacheSet = true
	}
	return r, nil
}

// Run executes one pipeline training run on the configured plane. It
// honors ctx between pipeline steps; on cancellation it returns the
// partial Result together with ctx.Err().
//
// With WithCheckpoint, Run starts fresh — it overwrites the checkpoint
// file with cursor 0 and persists cuts as the run commits subnets. A
// fault-injected crash surfaces as a *CrashError after the crash
// incarnation has been recorded, so a subsequent Resume continues where
// the committed frontier stopped.
func (r *Runner) Run(ctx context.Context, cfg Config) (Result, error) {
	r.applyOverrides(&cfg)
	switch r.executor {
	case ExecutorConcurrent:
		if r.ckptPath == "" {
			return engine.RunConcurrent(ctx, cfg)
		}
		full := cfg.ResolveSubnets()
		return r.runCheckpointed(ctx, cfg, full, fault.Checkpoint{
			Space:      cfg.Space.Name,
			Seed:       cfg.Seed,
			GPUs:       cfg.Spec.GPUs,
			NumSubnets: len(full),
			FaultSeed:  r.faultSeed(),
			JitterSeed: cfg.JitterSeed,
		})
	default:
		p, err := sched.New(r.policy)
		if err != nil {
			return Result{}, err
		}
		return engine.RunContext(ctx, cfg, p)
	}
}

// Resume continues an interrupted checkpointed run from the file set
// with WithCheckpoint. cfg must describe the same run handed to Run —
// the checkpoint's identity fields (space, seed, GPU count, stream
// length, jitter seed) are verified against it, and with
// WithCheckpointTraining the recorded prefix weight checksum is
// verified by retraining the committed prefix. The suffix then executes
// with the checkpoint's cursor as its sequence base and the next crash
// incarnation's fault schedule; the returned Result covers the suffix
// only (Result.BaseSeq tells how many subnets the checkpoint had
// already committed). Resume may itself crash under an aggressive fault
// plan — call it in a loop until the error is no longer a *CrashError.
func (r *Runner) Resume(ctx context.Context, cfg Config) (Result, error) {
	if r.ckptPath == "" {
		return Result{}, fmt.Errorf("naspipe: Resume requires WithCheckpoint")
	}
	ck, err := fault.Load(r.ckptPath)
	if err != nil {
		return Result{}, fmt.Errorf("naspipe: resume: %w", err)
	}
	r.applyOverrides(&cfg)
	full := cfg.ResolveSubnets()
	switch {
	case ck.Space != cfg.Space.Name:
		return Result{}, fmt.Errorf("naspipe: resume: checkpoint is for space %q, config says %q", ck.Space, cfg.Space.Name)
	case ck.Seed != cfg.Seed:
		return Result{}, fmt.Errorf("naspipe: resume: checkpoint seed %d != config seed %d", ck.Seed, cfg.Seed)
	case ck.GPUs != cfg.Spec.GPUs && !r.elastic:
		return Result{}, fmt.Errorf("naspipe: resume: checkpoint ran on %d GPUs, config says %d (WithElasticResume permits re-partitioning)", ck.GPUs, cfg.Spec.GPUs)
	case ck.NumSubnets != len(full):
		return Result{}, fmt.Errorf("naspipe: resume: checkpoint stream has %d subnets, config has %d", ck.NumSubnets, len(full))
	case ck.JitterSeed != cfg.JitterSeed:
		return Result{}, fmt.Errorf("naspipe: resume: checkpoint jitter seed %d != config jitter seed %d", ck.JitterSeed, cfg.JitterSeed)
	case ck.Cursor < 0 || ck.Cursor > len(full):
		return Result{}, fmt.Errorf("naspipe: resume: checkpoint cursor %d out of range [0, %d]", ck.Cursor, len(full))
	}
	if r.trainCfg != nil && ck.WeightChecksum != 0 {
		if got := train.NewCheckpointer(*r.trainCfg, full).ChecksumAt(ck.Cursor); got != ck.WeightChecksum {
			return Result{}, fmt.Errorf("naspipe: resume: prefix weight checksum %#x does not match checkpoint %#x — wrong training config or corrupt stream", got, ck.WeightChecksum)
		}
	}
	if ck.Cursor == len(full) {
		// Nothing left to run: the crash landed after the final commit.
		return Result{BaseSeq: ck.Cursor}, nil
	}
	// The engine runs the suffix under local 0-based seqs; SeqBase maps
	// every externally visible sequence number (trace, telemetry, fault
	// labels, checkpoint cuts) back to the global stream.
	suffix := make([]supernet.Subnet, len(full)-ck.Cursor)
	for i := range suffix {
		suffix[i] = full[ck.Cursor+i]
		suffix[i].Seq = i
	}
	cfg.Subnets = suffix
	cfg.NumSubnets = len(suffix)
	cfg.SeqBase = ck.Cursor
	cfg.FaultIncarnation = ck.Incarnation
	ck.FaultSeed = r.faultSeed()
	// Elastic resume: the suffix re-partitions at the config's depth, and
	// the rewritten identity persists it so later resumes verify against
	// the depth actually running.
	ck.GPUs = cfg.Spec.GPUs
	return r.runCheckpointed(ctx, cfg, full, ck)
}

// applyOverrides folds the Runner's option overrides into a run config;
// shared by Run and Resume.
func (r *Runner) applyOverrides(cfg *Config) {
	if r.traceSet {
		cfg.RecordTrace = r.trace
	}
	if r.tel != nil {
		cfg.Telemetry = r.tel
	}
	if r.executor == ExecutorConcurrent {
		if r.cacheSet {
			cfg.ConcurrentMem = engine.MemPlaneConfig{
				CacheFactor: r.cacheFactor,
				Predictor:   r.predictor,
			}
		}
		if r.faults != nil {
			cfg.Faults = r.faults
		}
	}
}

// faultSeed reports the active fault plan's seed for checkpoint identity.
func (r *Runner) faultSeed() uint64 {
	if r.faults == nil {
		return 0
	}
	return r.faults.Seed
}

// runCheckpointed executes a concurrent run with a file recorder wired
// to the engine's consistency cuts. full is the complete global subnet
// stream (the checkpointer retrains committed prefixes from it); ident
// seeds the recorder with the run identity plus, on resume, the
// starting cursor and incarnation. After an injected crash the
// recorder's incarnation is bumped on disk before the *CrashError is
// returned, so the next Resume rolls a fresh fault schedule.
func (r *Runner) runCheckpointed(ctx context.Context, cfg Config, full []supernet.Subnet, ident fault.Checkpoint) (Result, error) {
	var weightFn func(int) uint64
	if r.trainCfg != nil {
		weightFn = train.NewCheckpointer(*r.trainCfg, full).ChecksumAt
	}
	rec := fault.NewFileRecorder(r.ckptPath, ident, r.ckptEvery, weightFn)
	if err := rec.Init(); err != nil {
		return Result{}, fmt.Errorf("naspipe: checkpoint init: %w", err)
	}
	cfg.Checkpoint = rec
	res, err := engine.RunConcurrent(ctx, cfg)
	var crash *fault.CrashError
	switch {
	case errors.As(err, &crash):
		if berr := rec.Bump(); berr != nil {
			return res, fmt.Errorf("naspipe: recording crash incarnation: %w (run failed with: %v)", berr, err)
		}
	case err != nil && ctx.Err() != nil:
		// Interrupted (signal, watchdog, deadline): the committed frontier
		// is already on disk; bump the incarnation so the resumed run
		// rolls a fresh fault schedule — in particular, an incarnation-0
		// wedge that forced the interruption cannot refire.
		if berr := rec.Bump(); berr != nil {
			return res, fmt.Errorf("naspipe: recording interrupted incarnation: %w (run stopped with: %v)", berr, err)
		}
	}
	return res, err
}

// RunMany fans the configurations out over a bounded worker pool (see
// WithParallelism) and returns results in input order — deterministically,
// regardless of worker count or completion order. The first error by
// input index is returned; on cancellation the partial results come back
// with ctx.Err().
func (r *Runner) RunMany(ctx context.Context, cfgs []Config) ([]Result, error) {
	workers := parallel.Workers(r.parallelism, len(cfgs))
	return parallel.Map(ctx, workers, len(cfgs), func(i int) (Result, error) {
		return r.Run(ctx, cfgs[i])
	})
}
