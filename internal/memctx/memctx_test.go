package memctx

import (
	"testing"
	"testing/quick"

	"naspipe/internal/rng"
	"naspipe/internal/supernet"
)

const bw = 1000.0 // bytes per ms: 1000-byte layer swaps in 1 ms

func constBytes(b int64) func(supernet.LayerID) int64 {
	return func(supernet.LayerID) int64 { return b }
}

func ids(vals ...int) []supernet.LayerID {
	out := make([]supernet.LayerID, len(vals))
	for i, v := range vals {
		out[i] = supernet.LayerID(v)
	}
	return out
}

func TestPreloadHits(t *testing.T) {
	m := New(10000, bw)
	m.Preload(ids(1, 2, 3), constBytes(1000))
	ready := m.Acquire(ids(1, 2, 3), constBytes(1000), 5)
	if ready != 5 {
		t.Fatalf("preloaded acquire stalled until %f", ready)
	}
	st := m.Stats()
	if st.Hits != 3 || st.Misses != 0 {
		t.Fatalf("stats %+v, want 3 hits", st)
	}
}

func TestColdMissStalls(t *testing.T) {
	m := New(10000, bw)
	ready := m.Acquire(ids(7), constBytes(2000), 10)
	if ready != 12 { // 2000 bytes / 1000 B/ms = 2 ms
		t.Fatalf("ready = %f want 12", ready)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.StallMs != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPrefetchAvoidsStall(t *testing.T) {
	m := New(10000, bw)
	m.Prefetch(7, 2000, 0)
	// Copy completes at t=2; acquiring at t=5 is a hit with no stall.
	ready := m.Acquire(ids(7), constBytes(2000), 5)
	if ready != 5 {
		t.Fatalf("ready = %f want 5", ready)
	}
	if st := m.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLatePrefetchPartialStall(t *testing.T) {
	m := New(10000, bw)
	m.Prefetch(7, 2000, 0) // completes at 2
	ready := m.Acquire(ids(7), constBytes(2000), 1)
	if ready != 2 {
		t.Fatalf("ready = %f want 2", ready)
	}
	st := m.Stats()
	if st.Misses != 1 || st.LatePrefetches != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.StallMs != 1 {
		t.Fatalf("stall %f want 1 (partial)", st.StallMs)
	}
}

func TestPCIeSerialization(t *testing.T) {
	m := New(100000, bw)
	m.Prefetch(1, 1000, 0) // channel busy [0,1)
	m.Prefetch(2, 1000, 0) // serialized: [1,2)
	if m.Resident(2, 1.5) {
		t.Fatal("second prefetch should still be in flight at 1.5")
	}
	if !m.Resident(2, 2.0) {
		t.Fatal("second prefetch should be resident at 2.0")
	}
}

func TestEvictionFreesAndCountsTraffic(t *testing.T) {
	m := New(10000, bw)
	m.Preload(ids(1, 2), constBytes(3000))
	if m.Used() != 6000 {
		t.Fatalf("used %d", m.Used())
	}
	m.Evict(ids(1), 10)
	if m.Used() != 3000 {
		t.Fatalf("after evict used %d", m.Used())
	}
	if m.Resident(1, 100) {
		t.Fatal("evicted layer still resident")
	}
	if st := m.Stats(); st.SwapOutBytes != 3000 {
		t.Fatalf("swap-out bytes %d", st.SwapOutBytes)
	}
}

func TestLockedEntriesSurviveEviction(t *testing.T) {
	m := New(10000, bw)
	m.Acquire(ids(1), constBytes(1000), 0)
	m.Evict(ids(1), 5)
	if !m.Resident(1, 10) {
		t.Fatal("locked entry was evicted")
	}
	m.Release(ids(1), 10)
	m.Evict(ids(1), 10)
	if m.Resident(1, 20) {
		t.Fatal("released entry not evicted")
	}
}

func TestCapacityEvictsLRU(t *testing.T) {
	m := New(3000, bw)
	// Fill with 1,2,3 (1000 each), touching 1 most recently.
	m.Acquire(ids(1, 2, 3), constBytes(1000), 0)
	m.Release(ids(1, 2, 3), 0)
	m.Acquire(ids(2), constBytes(1000), 5)
	m.Release(ids(2), 5)
	m.Acquire(ids(1), constBytes(1000), 6)
	m.Release(ids(1), 6)
	// New layer 4 forces eviction of the LRU: layer 3 (lastUse 0).
	m.Prefetch(4, 1000, 10)
	if m.Resident(3, 20) {
		t.Fatal("layer 3 (LRU) should have been evicted")
	}
	if !m.Resident(1, 20) || !m.Resident(2, 20) {
		t.Fatal("recently used layers evicted instead of LRU")
	}
}

func TestPrefetchDelayedWhenAllLocked(t *testing.T) {
	m := New(2000, bw)
	m.Acquire(ids(1, 2), constBytes(1000), 0) // both locked, cache full
	m.Prefetch(3, 1000, 1)
	if m.Resident(3, 100) {
		t.Fatal("prefetch should have been delayed")
	}
	if m.Used() != 2000 {
		t.Fatalf("used %d want 2000", m.Used())
	}
}

func TestOverCapacityCountedOnForcedAcquire(t *testing.T) {
	m := New(1000, bw)
	m.Acquire(ids(1), constBytes(1000), 0) // locked, full
	m.Acquire(ids(2), constBytes(1000), 1) // must proceed anyway
	st := m.Stats()
	if st.OverCapacity != 1 {
		t.Fatalf("OverCapacity = %d want 1", st.OverCapacity)
	}
	if !m.Resident(2, 100) {
		t.Fatal("forced acquire must still make the layer resident")
	}
}

func TestUnboundedManagerNeverEvicts(t *testing.T) {
	m := New(-1, bw)
	for i := 0; i < 100; i++ {
		m.Prefetch(supernet.LayerID(i), 1<<20, float64(i))
	}
	if st := m.Stats(); st.EvictionsForced != 0 {
		t.Fatalf("unbounded manager evicted: %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	// Regression: zero accesses must NOT report a perfect hit rate — an
	// idle/degenerate stage earned nothing, and 1.0 inflated Table 2
	// aggregates. Such cells render as N/A (callers check Accesses()).
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("empty stats hit rate = %f, want 0", got)
	}
	if (Stats{}).Accesses() != 0 {
		t.Fatal("empty stats should report zero accesses")
	}
	s := Stats{Hits: 9, Misses: 1}
	if s.HitRate() != 0.9 {
		t.Fatalf("hit rate %f", s.HitRate())
	}
	if s.Accesses() != 10 {
		t.Fatalf("accesses %d want 10", s.Accesses())
	}
	if got := (Stats{Misses: 4}).HitRate(); got != 0 {
		t.Fatalf("all-miss hit rate = %f, want 0", got)
	}
}

func TestDroppedPrefetchCounted(t *testing.T) {
	// Regression: a prefetch abandoned because capacity is held by locked
	// entries used to vanish silently, leaving the later miss
	// unattributable. It must now be counted.
	m := New(2000, bw)
	m.Acquire(ids(1, 2), constBytes(1000), 0) // both locked, cache full
	m.Prefetch(3, 1000, 1)
	st := m.Stats()
	if st.DroppedPrefetches != 1 {
		t.Fatalf("DroppedPrefetches = %d want 1", st.DroppedPrefetches)
	}
	if st.Prefetches != 0 {
		t.Fatalf("dropped prefetch still counted as issued: %+v", st)
	}
	// A prefetch that finds room is not a drop.
	m.Release(ids(1, 2), 2)
	m.Prefetch(4, 1000, 3)
	st = m.Stats()
	if st.DroppedPrefetches != 1 || st.Prefetches != 1 {
		t.Fatalf("stats after successful prefetch %+v", st)
	}
}

func TestPeakBytesTracksHighWater(t *testing.T) {
	m := New(10000, bw)
	m.Preload(ids(1, 2, 3, 4), constBytes(2000))
	m.Evict(ids(1, 2, 3, 4), 1)
	if st := m.Stats(); st.PeakBytes != 8000 {
		t.Fatalf("peak %d want 8000", st.PeakBytes)
	}
}

func TestPreloadIdempotent(t *testing.T) {
	m := New(10000, bw)
	m.Preload(ids(1), constBytes(1000))
	m.Preload(ids(1), constBytes(1000))
	if m.Used() != 1000 {
		t.Fatalf("duplicate preload double-counted: %d", m.Used())
	}
}

func TestNewPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100, 0)
}

// Property: under any access sequence, used never exceeds capacity except
// via counted OverCapacity events, and accounting stays consistent
// (used == sum of entry bytes).
func TestQuickAccountingConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cap := int64(2000 + r.Intn(5)*1000)
		m := New(cap, bw)
		now := 0.0
		var locked []supernet.LayerID
		for op := 0; op < 60; op++ {
			now += float64(r.Intn(3))
			id := supernet.LayerID(r.Intn(10))
			switch r.Intn(4) {
			case 0:
				m.Prefetch(id, 1000, now)
			case 1:
				m.Release(locked, now)
				locked = nil
				ready := m.Acquire(ids(int(id)), constBytes(1000), now)
				if ready < now {
					return false
				}
				locked = ids(int(id))
			case 2:
				m.Evict([]supernet.LayerID{id}, now)
			case 3:
				m.Release(locked, now)
				locked = nil
			}
			if m.Used() > cap && m.Stats().OverCapacity == 0 {
				// capacity may be transiently exceeded only when
				// everything else is locked, which is counted.
				return false
			}
			if m.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a prefetch issued sufficiently early always converts the
// access into a hit with zero stall.
func TestQuickEarlyPrefetchAlwaysHits(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := New(-1, bw)
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			m.Prefetch(supernet.LayerID(i), 1000, float64(i))
		}
		// All copies done by n ms (serialized 1 ms each); acquire later.
		at := float64(n) + 1
		ready := m.Acquire(idsRange(n), constBytes(1000), at)
		if ready != at {
			return false
		}
		st := m.Stats()
		return st.Hits == n && st.Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func idsRange(n int) []supernet.LayerID {
	out := make([]supernet.LayerID, n)
	for i := range out {
		out[i] = supernet.LayerID(i)
	}
	return out
}

func TestEvictCancelsInFlightPrefetch(t *testing.T) {
	// Evicting an unlocked in-flight entry aborts the copy: the layer is
	// simply no longer resident (the context manager treats a cancelled
	// prefetch like a delayed one).
	m := New(10000, bw)
	m.Prefetch(3, 2000, 0) // in flight until t=2
	m.Evict(ids(3), 1)
	if m.Resident(3, 10) {
		t.Fatal("evicted in-flight entry still resident")
	}
}

func TestReleaseUnknownIDsHarmless(t *testing.T) {
	m := New(1000, bw)
	m.Release(ids(42, 43), 0) // never acquired
	if m.Used() != 0 {
		t.Fatal("phantom residency after releasing unknown ids")
	}
}

func TestDoubleAcquireNeedsDoubleRelease(t *testing.T) {
	// Lock counts: two tasks sharing a layer must both release before it
	// becomes evictable (non-CSP policies can overlap same-layer tasks).
	m := New(10000, bw)
	m.Acquire(ids(1), constBytes(1000), 0)
	m.Acquire(ids(1), constBytes(1000), 1)
	m.Release(ids(1), 2)
	m.Evict(ids(1), 3)
	if !m.Resident(1, 4) {
		t.Fatal("layer evicted while still locked by the second task")
	}
	m.Release(ids(1), 4)
	m.Evict(ids(1), 5)
	if m.Resident(1, 6) {
		t.Fatal("layer not evictable after both releases")
	}
}
