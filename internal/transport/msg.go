package transport

import (
	"fmt"

	"naspipe/internal/csp"
	"naspipe/internal/supernet"
)

// Stage addresses.
const (
	// Broadcast as a Msg.To fans the message out to every stage except
	// the sender — the completion-note pattern.
	Broadcast = -1
	// Coordinator addresses the hub of the TCP star (the naspiped
	// coordinator); it never appears in engine-level traffic.
	Coordinator = -2
)

// Msg is the engine-facing message: what one stage says to another,
// independent of how it travels. Exactly one payload family is
// populated, keyed by Type: Fwd carries Seq; Bwd carries Seq + Carried;
// Note carries Seq + IDs + Finished; Fetch carries Seq.
type Msg struct {
	Type     FrameType
	From     int
	To       int
	Seq      int
	Carried  []csp.PendingBackward // FrameBwd: Algorithm 2's carried releases
	IDs      []supernet.LayerID    // FrameNote: layers the finished pass touched
	Finished bool                  // FrameNote: subnet fully done
}

// Transport moves Msgs between pipeline stages. Send is safe for
// concurrent use; Recv returns the stable per-stage delivery channel
// (same channel on every call). Implementations deliver each message
// exactly once per destination stage, in per-sender order. After Close,
// Send returns ErrClosed and delivery channels stop filling; they are
// not closed, so receivers must select against their own context.
type Transport interface {
	Send(m Msg) error
	Recv(stage int) <-chan Msg
	Close() error
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = fmt.Errorf("transport: closed")

// Frame encodes the message for the wire.
func (m Msg) Frame() Frame {
	f := Frame{Type: m.Type, From: m.From, To: m.To}
	switch m.Type {
	case FrameFwd, FrameBwd, FrameFetch:
		f.Payload = Task{Seq: m.Seq, Carried: m.Carried}.Encode()
	case FrameNote:
		f.Payload = Note{Seq: m.Seq, Finished: m.Finished, IDs: m.IDs}.Encode()
	}
	return f
}

// MsgFromFrame decodes a data-plane frame back into a Msg. Control
// frames (hello, assign, heartbeat, ...) are not Msgs and are rejected.
func MsgFromFrame(f Frame) (Msg, error) {
	m := Msg{Type: f.Type, From: f.From, To: f.To}
	switch f.Type {
	case FrameFwd, FrameBwd, FrameFetch:
		t, err := DecodeTask(f.Payload)
		if err != nil {
			return Msg{}, err
		}
		m.Seq, m.Carried = t.Seq, t.Carried
	case FrameNote:
		n, err := DecodeNote(f.Payload)
		if err != nil {
			return Msg{}, err
		}
		m.Seq, m.IDs, m.Finished = n.Seq, n.IDs, n.Finished
	default:
		return Msg{}, decodeErrf(0, "frame type %s is not engine traffic", f.Type)
	}
	return m, nil
}
