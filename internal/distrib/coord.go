package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"naspipe"
	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/supervise"
	"naspipe/internal/telemetry"
	"naspipe/internal/trace"
	"naspipe/internal/train"
	"naspipe/internal/transport"
)

// CoordConfig parameterizes a coordinator. Spec, RunID, and Launcher
// are required; everything else defaults.
type CoordConfig struct {
	// Spec is the job: the same versioned JobSpec the service API and
	// CLIs speak. It must select the concurrent executor. The spec's
	// Checkpoint path, Train plane, Supervise block, and Verify flag
	// all apply — the coordinator is the durable half of the fleet.
	Spec naspipe.JobSpec
	// RunID names the run; worker Hellos must match it.
	RunID string
	// Addr is the listen address ("" = 127.0.0.1:0).
	Addr string
	// Launcher starts the stage workers each incarnation.
	Launcher Launcher

	// DeadAfter declares a worker dead when its heartbeats stop for
	// this long (0 = 2s). Transient link cuts heal in milliseconds via
	// reconnect, so anything that trips this is a real death.
	DeadAfter time.Duration
	// Resume starts from the spec's checkpoint file instead of fresh.
	Resume bool

	Tel *telemetry.Bus
	Log func(format string, args ...any)
}

func (c CoordConfig) withDefaults() CoordConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2 * time.Second
	}
	return c
}

// Coordinator owns one distributed run: the durable cursor, the fleet
// lifecycle, and the global verification.
type Coordinator struct {
	cfg      CoordConfig
	spec     naspipe.JobSpec
	specJSON []byte
	plan     *fault.Plan // parsed spec.Faults (nil when none)

	mu          sync.Mutex
	cursor      int
	incarnation int
	rec         *fault.FileRecorder // nil without a checkpoint path
}

// NewCoordinator validates the configuration and builds a coordinator.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.RunID == "" {
		return nil, fmt.Errorf("distrib: coordinator needs a RunID")
	}
	if cfg.Launcher == nil {
		return nil, fmt.Errorf("distrib: coordinator needs a Launcher")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	if cfg.Spec.Executor != "concurrent" {
		return nil, fmt.Errorf("distrib: the distributed plane runs the concurrent executor; spec says %q", cfg.Spec.Executor)
	}
	specJSON, err := json.Marshal(cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("distrib: encoding spec: %w", err)
	}
	var plan *fault.Plan
	if cfg.Spec.Faults != "" {
		if plan, err = fault.ParsePlan(cfg.Spec.Faults); err != nil {
			return nil, fmt.Errorf("distrib: %w", err)
		}
	}
	return &Coordinator{cfg: cfg, spec: cfg.Spec, specJSON: specJSON, plan: plan}, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

func (c *Coordinator) state() (cursor, incarnation int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cursor, c.incarnation
}

// record applies a stage-0 consistency cut: the in-memory cursor
// always advances (re-admission after a kill needs it even without a
// checkpoint file), and the file recorder persists when configured.
func (c *Coordinator) record(cut fault.Cut) error {
	c.mu.Lock()
	if cut.Cursor > c.cursor {
		c.cursor = cut.Cursor
	}
	rec := c.rec
	c.mu.Unlock()
	if rec != nil {
		return rec.Snapshot(cut)
	}
	return nil
}

// bump rolls the incarnation after an incident so the relaunched fleet
// draws a fresh fault schedule.
func (c *Coordinator) bump() error {
	c.mu.Lock()
	c.incarnation++
	rec := c.rec
	c.mu.Unlock()
	if rec != nil {
		return rec.Bump()
	}
	return nil
}

// Run executes the job to completion under supervision: launch fleet,
// collect, and on any worker death relaunch from the committed cursor
// until the stream finishes or the restart budget runs out. The
// returned Result covers the final incarnation's suffix (BaseSeq tells
// where it started); with spec.Verify the merged fleet trace has been
// replayed against the sequential reference before Run returns.
func (c *Coordinator) Run(ctx context.Context) (naspipe.Result, *supervise.Report, error) {
	fullCfg, err := c.spec.Config()
	if err != nil {
		return naspipe.Result{}, &supervise.Report{}, err
	}
	if c.spec.Checkpoint != "" {
		ident := fault.Checkpoint{
			Space: c.spec.Space, Seed: c.spec.Seed, GPUs: c.spec.GPUs,
			NumSubnets: c.spec.Subnets, JitterSeed: c.spec.JitterSeed,
		}
		if c.plan != nil {
			ident.FaultSeed = c.plan.Seed
		}
		if c.cfg.Resume {
			ck, lerr := fault.Load(c.spec.Checkpoint)
			if lerr != nil {
				return naspipe.Result{}, &supervise.Report{}, fmt.Errorf("distrib: resume: %w", lerr)
			}
			if ck.Space != c.spec.Space || ck.Seed != c.spec.Seed || ck.NumSubnets != c.spec.Subnets {
				return naspipe.Result{}, &supervise.Report{}, fmt.Errorf("distrib: resume: checkpoint identity (space %s seed %d n %d) does not match the spec",
					ck.Space, ck.Seed, ck.NumSubnets)
			}
			ident.Cursor, ident.Incarnation = ck.Cursor, ck.Incarnation
			c.cursor, c.incarnation = ck.Cursor, ck.Incarnation
		}
		var weightFn func(int) uint64
		if tc, ok := c.spec.TrainConfig(); ok {
			weightFn = train.NewCheckpointer(tc, fullCfg.ResolveSubnets()).ChecksumAt
		}
		c.rec = fault.NewFileRecorder(c.spec.Checkpoint, ident, c.spec.CheckpointEvery, weightFn)
		if err := c.rec.Init(); err != nil {
			return naspipe.Result{}, &supervise.Report{}, fmt.Errorf("distrib: checkpoint init: %w", err)
		}
	}

	scfg, ok := c.spec.SuperviseConfig()
	if !ok {
		scfg = supervise.Defaults()
	}
	scfg.Telemetry = c.cfg.Tel
	scfg.Log = c.cfg.Log
	inc := func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
		return c.incarnate(ctx, gpus, probe)
	}
	job := supervise.Job{
		Run: inc, Resume: inc,
		Cursor: func() (int, error) { cur, _ := c.state(); return cur, nil },
		GPUs:   c.spec.GPUs, Total: c.spec.Subnets,
	}
	res, rep, err := supervise.Run(ctx, scfg, job)
	if err != nil {
		return res, rep, err
	}
	if c.spec.Verify {
		tc, ok := c.spec.TrainConfig()
		if !ok {
			return res, rep, fmt.Errorf("distrib: verify requires a train spec")
		}
		sum, verr := naspipe.VerifyAgainstSequential(tc, fullCfg, res)
		if verr != nil {
			return res, rep, verr
		}
		c.logf("coordinator: resume verified: weights %016x match the sequential reference", sum)
	}
	return res, rep, nil
}

// workerExit is a process-watcher report: the stage whose process
// ended, and how.
type workerExit struct {
	stage int
	err   error
}

// fleetState is one incarnation's mutable bookkeeping, shared between
// the relay pumps, the accept loop, and the main select loop.
type fleetState struct {
	mu        sync.Mutex
	beats     []time.Time
	lastTasks []int64
	done      []*transport.Done
	remaining int

	allDone chan struct{}
	deaths  chan workerExit
	failed  chan *transport.Failed
}

func newFleetState(gpus int) *fleetState {
	st := &fleetState{
		beats:     make([]time.Time, gpus),
		lastTasks: make([]int64, gpus),
		done:      make([]*transport.Done, gpus),
		remaining: gpus,
		allDone:   make(chan struct{}),
		deaths:    make(chan workerExit, gpus),
		failed:    make(chan *transport.Failed, gpus),
	}
	now := time.Now()
	for k := range st.beats {
		st.beats[k] = now
	}
	return st
}

func (st *fleetState) beat(stage int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if stage >= 0 && stage < len(st.beats) {
		st.beats[stage] = time.Now()
	}
}

// taskDelta returns how many tasks the stage completed since its last
// heartbeat (to feed the probe's monotone counter).
func (st *fleetState) taskDelta(stage int, tasks int64) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if stage < 0 || stage >= len(st.lastTasks) {
		return 0
	}
	d := tasks - st.lastTasks[stage]
	if d < 0 {
		d = 0
	}
	st.lastTasks[stage] = tasks
	return d
}

func (st *fleetState) setDone(stage int, d *transport.Done) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if stage < 0 || stage >= len(st.done) || st.done[stage] != nil {
		return
	}
	st.done[stage] = d
	if st.remaining--; st.remaining == 0 {
		close(st.allDone)
	}
}

func (st *fleetState) isDone(stage int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return stage >= 0 && stage < len(st.done) && st.done[stage] != nil
}

// deadStage returns the first stage whose heartbeat is older than the
// deadline and has not finished, or -1.
func (st *fleetState) deadStage(deadAfter time.Duration) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	for k, b := range st.beats {
		if st.done[k] == nil && now.Sub(b) > deadAfter {
			return k
		}
	}
	return -1
}

// incarnate runs one fleet incarnation: listen, launch one worker per
// stage, relay frames, and either collect every Done (success) or
// convert the first death into a *fault.CrashError after tearing the
// fleet down (the supervision plane resumes from the committed
// cursor).
func (c *Coordinator) incarnate(parent context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error) {
	cursor, incNo := c.state()
	total := c.spec.Subnets
	start := time.Now()
	res := engine.Result{
		Policy: "NASPipe-CC-dist", Space: c.spec.Space, D: gpus,
		BaseSeq: cursor,
	}
	if cursor >= total {
		// The previous incarnation's crash landed after the final
		// commit; nothing left to run.
		res.Completed = 0
		return res, nil
	}
	probe.Attach(gpus, cursor)

	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return res, fmt.Errorf("distrib: listen %s: %w", c.cfg.Addr, err)
	}
	defer ln.Close()

	// The transport fault plane injects on the coordinator-side links
	// only — one deterministic site per (incarnation, stage, seqno),
	// like the engine's per-task fault sites.
	var inj *fault.Injector
	if c.plan != nil && c.plan.TransportEnabled() {
		if inj, err = fault.NewInjector(*c.plan, incNo); err != nil {
			return res, err
		}
	}
	links := make([]*transport.Link, gpus)
	for k := range links {
		links[k] = transport.NewLink(transport.LinkConfig{
			Local: transport.Coordinator, Peer: k,
			Injector: inj, Tel: c.cfg.Tel,
		})
	}
	defer func() {
		for _, l := range links {
			l.Close()
		}
	}()

	st := newFleetState(gpus)
	go c.acceptLoop(ctx, ln, links, gpus, cursor, incNo, st)
	var pumps sync.WaitGroup
	for k := range links {
		pumps.Add(1)
		go func(k int) {
			defer pumps.Done()
			c.pump(ctx, k, links, probe, st)
		}(k)
	}

	procs := make([]Process, gpus)
	addr := ln.Addr().String()
	for k := range procs {
		p, lerr := c.cfg.Launcher.Start(ctx, WorkerSpec{
			Addr: addr, RunID: c.cfg.RunID, Stage: k, Incarnation: incNo,
		})
		if lerr != nil {
			c.killFleet(procs, links, "launch failed")
			return res, fmt.Errorf("distrib: %w", lerr)
		}
		procs[k] = p
		go func(k int, p Process) {
			werr := p.Wait()
			select {
			case st.deaths <- workerExit{stage: k, err: werr}:
			case <-ctx.Done():
			}
		}(k, p)
	}
	c.logf("coordinator: incarnation %d: fleet of %d launched (cursor %d/%d) on %s", incNo, gpus, cursor, total, addr)

	deadTick := time.NewTicker(c.cfg.DeadAfter / 4)
	defer deadTick.Stop()
	incident := func(stage int, why string) (engine.Result, error) {
		c.logf("coordinator: incarnation %d: stage %d died (%s); tearing fleet down", incNo, stage, why)
		c.killFleet(procs, links, why)
		cancel()
		pumps.Wait()
		if berr := c.bump(); berr != nil {
			return res, fmt.Errorf("distrib: recording crash incarnation: %w", berr)
		}
		cur, _ := c.state()
		return res, &fault.CrashError{Stage: stage, Seq: cur, Incarnation: incNo}
	}
	for {
		select {
		case <-parent.Done():
			c.killFleet(procs, links, "interrupted")
			cancel()
			pumps.Wait()
			if berr := c.bump(); berr != nil {
				return res, berr
			}
			return res, parent.Err()
		case <-st.allDone:
			c.broadcast(links, "complete")
			c.reapFleet(procs)
			cancel()
			pumps.Wait()
			return c.finish(res, gpus, cursor, st, start)
		case f := <-st.failed:
			if f.Kind == "crash" {
				return res, c.incidentErr(procs, links, &pumps, cancel,
					&fault.CrashError{Stage: f.Stage, Seq: f.Seq, Kind: 0, Incarnation: f.Incarnation})
			}
			// A non-crash worker failure (spec rejected, transport
			// poisoned) is not survivable by relaunch.
			c.killFleet(procs, links, "worker failed")
			cancel()
			pumps.Wait()
			return res, fmt.Errorf("distrib: stage %d failed: %s", f.Stage, f.Msg)
		case we := <-st.deaths:
			if st.isDone(we.stage) {
				continue // clean exit after Done — expected
			}
			return incident(we.stage, fmt.Sprintf("process exited: %v", we.err))
		case <-deadTick.C:
			if k := st.deadStage(c.cfg.DeadAfter); k >= 0 {
				return incident(k, fmt.Sprintf("no heartbeat for %v", c.cfg.DeadAfter))
			}
		}
	}
}

// incidentErr tears the fleet down and returns the crash error after
// bumping the incarnation — the Failed-frame twin of incident above.
func (c *Coordinator) incidentErr(procs []Process, links []*transport.Link, pumps *sync.WaitGroup,
	cancel context.CancelFunc, crash *fault.CrashError) error {
	c.logf("coordinator: stage %d reported crash at seq %d; tearing fleet down", crash.Stage, crash.Seq)
	c.killFleet(procs, links, "fleet restart")
	cancel()
	pumps.Wait()
	if berr := c.bump(); berr != nil {
		return fmt.Errorf("distrib: recording crash incarnation: %w", berr)
	}
	return crash
}

// finish assembles the incarnation's Result from the fleet's Done
// reports: stage 0's completion count is authoritative, and the
// workers' observed traces merge topologically into the global
// observation the verification plane replays.
func (c *Coordinator) finish(res engine.Result, gpus, cursor int, st *fleetState, start time.Time) (engine.Result, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	parts := make([]*trace.Trace, 0, gpus)
	for k, d := range st.done {
		if d == nil {
			return res, fmt.Errorf("distrib: stage %d never reported done", k)
		}
		if k == 0 {
			res.Completed = d.Completed
		}
		parts = append(parts, &trace.Trace{Events: d.Trace})
	}
	res.ObservedTrace = engine.MergeStageTraces(gpus, cursor, parts)
	res.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
	if res.TotalMs > 0 {
		res.SubnetsPerHour = float64(res.Completed) / (res.TotalMs / 3.6e6)
	}
	// The final cut normally lands before Done on the ordered link,
	// but an unthrottled recorder is not guaranteed — commit the
	// authoritative count.
	final := cursor + res.Completed
	if final > c.cursorLocked() {
		c.mu.Lock()
		if final > c.cursor {
			c.cursor = final
		}
		c.mu.Unlock()
	}
	c.logf("coordinator: stream complete: %d subnets (cursor %d), %d trace events merged",
		res.Completed, final, len(res.ObservedTrace.Events))
	return res, nil
}

func (c *Coordinator) cursorLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cursor
}

// killFleet aborts and kills every worker. Abort is best-effort (the
// dead one cannot hear it); Kill is not.
func (c *Coordinator) killFleet(procs []Process, links []*transport.Link, why string) {
	c.broadcast(links, why)
	for _, p := range procs {
		if p != nil {
			p.Kill()
		}
	}
}

// reapFleet waits briefly for clean worker exits after a release
// broadcast, then kills stragglers.
func (c *Coordinator) reapFleet(procs []Process) {
	deadline := time.After(2 * time.Second)
	done := make(chan struct{})
	go func() {
		for _, p := range procs {
			if p != nil {
				p.Wait()
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		for _, p := range procs {
			if p != nil {
				p.Kill()
			}
		}
	}
}

// broadcast sends an Abort to every connected worker.
func (c *Coordinator) broadcast(links []*transport.Link, reason string) {
	payload := transport.Abort{Reason: reason}.Encode()
	for k, l := range links {
		_ = l.Send(transport.Frame{
			Type: transport.FrameAbort, From: transport.Coordinator, To: k,
			Payload: payload,
		})
	}
}

// acceptLoop owns the listener: every inbound connection introduces
// itself with a Hello, and the conn is attached to its stage's link.
// Reconnects after a cut re-enter here — same handshake, same link,
// and the link's reliability plane retransmits whatever the dead conn
// lost. Stale incarnations (a zombie surviving a fleet kill) are
// refused.
func (c *Coordinator) acceptLoop(ctx context.Context, ln net.Listener, links []*transport.Link,
	gpus, cursor, incNo int, st *fleetState) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed with the incarnation
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			f, err := transport.ReadFrame(conn)
			if err != nil || f.Type != transport.FrameHello {
				conn.Close()
				return
			}
			h, err := transport.DecodeHello(f.Payload)
			if err != nil || h.RunID != c.cfg.RunID || h.Stage < 0 || h.Stage >= gpus {
				conn.Close()
				return
			}
			if h.Incarnation != incNo {
				// A zombie from before the fleet restart: refuse it.
				transport.WriteFrame(conn, transport.Frame{
					Type: transport.FrameAbort, From: transport.Coordinator, To: h.Stage,
					Payload: transport.Abort{Reason: fmt.Sprintf("stale incarnation %d (current %d)", h.Incarnation, incNo)}.Encode(),
				})
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			links[h.Stage].Attach(conn)
			st.beat(h.Stage)
			// (Re)issue the assignment. The worker acts on the first
			// one it sees and ignores the rest.
			_ = links[h.Stage].Send(transport.Frame{
				Type: transport.FrameAssign, From: transport.Coordinator, To: h.Stage,
				Payload: transport.Assign{
					Stage: h.Stage, D: gpus, Cursor: cursor,
					Incarnation: incNo, Spec: c.specJSON,
				}.Encode(),
			})
		}(conn)
	}
}

// pump relays one stage's inbound frames: engine traffic routes to its
// destination stage (broadcasts fan out to everyone but the sender),
// control frames feed the fleet state, the checkpoint recorder, and
// the health probe.
func (c *Coordinator) pump(ctx context.Context, k int, links []*transport.Link,
	probe *engine.RunProbe, st *fleetState) {
	for {
		select {
		case <-ctx.Done():
			return
		case f, ok := <-links[k].In():
			if !ok {
				return
			}
			switch f.Type {
			case transport.FrameFwd, transport.FrameBwd, transport.FrameNote, transport.FrameFetch:
				c.route(links, f)
			case transport.FrameCut:
				cut, err := transport.DecodeCut(f.Payload)
				if err == nil {
					if rerr := c.record(cut); rerr != nil {
						c.logf("coordinator: checkpoint save failed: %v", rerr)
					}
				}
			case transport.FrameHeartbeat:
				h, err := transport.DecodeHeartbeat(f.Payload)
				if err != nil {
					continue
				}
				st.beat(h.Stage)
				probe.AdvanceFrontier(h.Frontier)
				health := engine.StageHealth{Stage: h.Stage, BlockedHead: -1, OwnerSubnet: -1}
				delta := st.taskDelta(h.Stage, h.Tasks)
				if delta == 0 {
					probe.Publish(health, false)
				}
				for ; delta > 0; delta-- {
					probe.Publish(health, true)
				}
			case transport.FrameDone:
				d, err := transport.DecodeDone(f.Payload)
				if err == nil {
					st.setDone(k, &d)
				}
			case transport.FrameFailed:
				fl, err := transport.DecodeFailed(f.Payload)
				if err == nil {
					select {
					case st.failed <- &fl:
					default:
					}
				}
			}
		}
	}
}

// route forwards one engine frame to its destination link. Broadcast
// fans out to every stage except the sender — the completion-note
// pattern, with the coordinator doing the expansion so each worker
// link carries exactly the frames its stage must see.
func (c *Coordinator) route(links []*transport.Link, f transport.Frame) {
	if f.To == transport.Broadcast {
		for j := range links {
			if j != f.From {
				g := f
				g.To = j
				_ = links[j].Send(g)
			}
		}
		return
	}
	if f.To >= 0 && f.To < len(links) {
		_ = links[f.To].Send(f)
	}
}

// ErrNotDistributed marks spec shapes the plane cannot run.
var ErrNotDistributed = errors.New("distrib: spec does not describe a distributed run")
