package metrics

import (
	"strings"
	"testing"
)

func TestGigabytes(t *testing.T) {
	if Gigabytes(0) != "0" {
		t.Fatal("zero bytes")
	}
	if got := Gigabytes(57<<30 + 1<<29); got != "57.5G" {
		t.Fatalf("got %q", got)
	}
}

func TestParams(t *testing.T) {
	if got := Params(4 * 1327 * 1000 * 1000); got != "1327M" {
		t.Fatalf("got %q", got)
	}
	if got := Params(4 * 14_800_000_000); got != "14.8B" {
		t.Fatalf("got %q", got)
	}
	if got := Params(4 * 900_000); got != "900K" {
		t.Fatalf("got %q", got)
	}
}

func TestFactorAndPercent(t *testing.T) {
	if Factor(7.84) != "7.8x" {
		t.Fatal("factor format")
	}
	if Percent(0.943) != "94.3%" {
		t.Fatal("percent format")
	}
	if Percent(-1) != "N/A" {
		t.Fatal("negative percent must render N/A")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Space", "System", "Value")
	tb.AddRow("NLP.c1", "NASPipe", 1.5)
	tb.AddRow("NLP.c1", "GPipe", 42)
	tb.AddNote("calibrated against Table 2")
	out := tb.Render()
	for _, want := range []string{"== Demo ==", "Space", "NASPipe", "1.50", "42", "note: calibrated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and first row's second column start at the
	// same offset.
	lines := strings.Split(out, "\n")
	if strings.Index(lines[1], "System") != strings.Index(lines[3], "NASPipe") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestSeriesRender(t *testing.T) {
	var s Series
	s.Name = "throughput"
	s.Add("a", 10)
	s.Add("b", 40)
	out := s.Render()
	if !strings.Contains(out, "throughput") || !strings.Contains(out, "########") {
		t.Fatalf("series render:\n%s", out)
	}
	if strings.Count(strings.Split(out, "\n")[2], "#") != 40 {
		t.Fatalf("max bar should be 40 hashes:\n%s", out)
	}
}

func TestSeriesEmptySafe(t *testing.T) {
	var s Series
	s.Name = "empty"
	if out := s.Render(); !strings.Contains(out, "empty") {
		t.Fatal("empty series render broken")
	}
}

func TestStageCacheHitRate(t *testing.T) {
	if got := (StageCache{}).HitRate(); got != 0 {
		t.Fatalf("idle stage hit rate %v, want 0", got)
	}
	if got := (StageCache{Hits: 9, Misses: 1}).HitRate(); got != 0.9 {
		t.Fatalf("hit rate %v, want 0.9", got)
	}
}

func TestCacheTable(t *testing.T) {
	out := CacheTable([]StageCache{
		{Stage: 0, Hits: 90, Misses: 10, Prefetches: 80, DroppedPrefetches: 3,
			StallMs: 1.25, PeakBytes: 1 << 30},
		{Stage: 1}, // idle stage: hit-rate cell must render N/A, not 0% or 100%
	})
	for _, want := range []string{"Stage", "90.0%", "N/A", "1.25", "1.0G", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cache table missing %q:\n%s", want, out)
		}
	}
	// The totals row aggregates only the active stage, so the aggregate
	// rate equals stage 0's.
	if strings.Count(out, "90.0%") != 2 {
		t.Fatalf("totals row did not aggregate hit rate:\n%s", out)
	}
}

func TestContentionTableCarriedColumn(t *testing.T) {
	out := ContentionTable([]StageContention{
		{Stage: 0, Tasks: 4},
		{Stage: 1, Tasks: 4, Carried: 7},
	})
	if !strings.Contains(out, "Carried") || !strings.Contains(out, "7") {
		t.Fatalf("contention table missing carried column:\n%s", out)
	}
}
