package train

import (
	"testing"

	"naspipe/internal/data"
	"naspipe/internal/supernet"
)

// Training-plane benchmarks: the per-subnet step is the numeric hot path
// of every executor (sequential reference, replay verification, resume
// re-verification), so its per-op cost and allocation profile gate the
// whole system. Run with `go test -bench . -benchmem ./internal/train/`.

// benchCfg scales the numeric plane up from the tiny test default so the
// kernels, not the scheduler bookkeeping, dominate.
func benchCfg(space supernet.Space, dim int) Config {
	return Config{Space: space, Dim: dim, Seed: 7, BatchSize: 4, LR: 0.05, Dataset: data.WNMT}
}

// BenchmarkTrainSubnetStep measures one full subnet step (forward +
// backward + SGD over every block) against a live supernet at the
// default model dimension.
func BenchmarkTrainSubnetStep(b *testing.B) {
	sp := supernet.NLPc3.Scaled(8, 3)
	cfg := benchCfg(sp, 12)
	net := supernet.BuildNumeric(sp, cfg.Dim, cfg.Seed)
	subs := supernet.Sample(sp, 1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepOn(cfg, net, subs[i%len(subs)])
	}
}

// BenchmarkTrainSubnetStepDim64 is the same step with the model
// dimension scaled so the tensor kernels dominate.
func BenchmarkTrainSubnetStepDim64(b *testing.B) {
	sp := supernet.NLPc3.Scaled(8, 3)
	cfg := benchCfg(sp, 64)
	net := supernet.BuildNumeric(sp, cfg.Dim, cfg.Seed)
	subs := supernet.Sample(sp, 1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepOn(cfg, net, subs[i%len(subs)])
	}
}

// BenchmarkTrainSequential32 trains a 32-subnet stream end to end — the
// sequential reference run every verification pays for.
func BenchmarkTrainSequential32(b *testing.B) {
	sp := supernet.NLPc3.Scaled(8, 3)
	cfg := benchCfg(sp, 12)
	subs := supernet.Sample(sp, 1, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(cfg, subs)
	}
}
