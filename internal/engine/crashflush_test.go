package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/telemetry"
)

// countCompletes tallies captured OpTaskComplete events per stage.
func countCompletes(evs []telemetry.Event, stages int) []int64 {
	out := make([]int64, stages)
	for _, ev := range evs {
		if ev.Op == telemetry.OpTaskComplete && int(ev.Stage) < stages {
			out[ev.Stage]++
		}
	}
	return out
}

// TestCrashUnwindFlushesBatchers is the satellite regression test for
// the crash-unwind audit: when a fault.CrashError unwinds the stage
// goroutines, every stage's telemetry.Batcher must flush, so the
// captured stream loses nothing — the fault timeline a replay tool
// reconstructs would otherwise silently miss the last <=64 events per
// stage, exactly the ones leading up to the crash.
func TestCrashUnwindFlushesBatchers(t *testing.T) {
	cfg := ccCfg(4, true)
	cfg.Faults = &fault.Plan{
		Seed:      1,
		CrashTask: &fault.TaskRef{Stage: 2, Seq: 9, Kind: fault.KindForward},
	}
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus

	res, err := engine.RunConcurrent(context.Background(), cfg)
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CrashError, got %v", err)
	}

	snap := bus.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("ring dropped %d events; the count comparison needs a lossless capture", snap.Dropped)
	}
	// Emitted counts every event that reached the bus; Len is what the
	// ring captured. With zero drops they must agree — any gap is an
	// event still sitting in a stage's batcher after unwind.
	if got := uint64(bus.Len()); got != snap.Emitted {
		t.Fatalf("captured %d events, emitted %d: batched events lost on crash unwind", got, snap.Emitted)
	}

	evs := bus.Events()
	// Per-stage cross-check against the engine's own completion
	// accounting: Contention[k].Tasks increments once per completed task,
	// in lockstep with the batched OpTaskComplete emission.
	completes := countCompletes(evs, len(res.Contention))
	for k, cont := range res.Contention {
		if completes[k] != cont.Tasks {
			t.Errorf("stage %d: %d completes captured, engine completed %d tasks",
				k, completes[k], cont.Tasks)
		}
	}
	// The crash itself must be on the stream (it bypasses the batcher so
	// the timeline records it even if the goroutine never flushed again).
	found := false
	for _, ev := range evs {
		if ev.Op == telemetry.OpFaultCrash && int(ev.Stage) == ce.Stage && int(ev.Subnet) == ce.Seq {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("OpFaultCrash for %v not captured", ce)
	}
}

// TestWedgeFlushesBatcher: a wedged stage hangs until cancellation, so
// its batcher must flush before the hang — mid-stall observers (the
// watchdog's debug snapshot) need the events leading up to the wedge.
// Forwards complete in sequence order on a stage, so once the wedge
// event is visible the wedged stage's forward-complete count must reach
// the wedge sequence without waiting for cancellation.
func TestWedgeFlushesBatcher(t *testing.T) {
	const wedgeStage, wedgeSeq = 1, 6
	cfg := ccCfg(2, false)
	cfg.Faults = &fault.Plan{
		Seed:      3,
		WedgeTask: &fault.TaskRef{Stage: wedgeStage, Seq: wedgeSeq, Kind: fault.KindForward},
	}
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := engine.RunConcurrent(ctx, cfg)
		done <- err
	}()

	deadline := time.After(10 * time.Second)
	for {
		var wedged bool
		var fwdCompletes int
		for _, ev := range bus.Events() {
			switch {
			case ev.Op == telemetry.OpFaultWedge && int(ev.Stage) == wedgeStage:
				wedged = true
			case ev.Op == telemetry.OpTaskComplete && int(ev.Stage) == wedgeStage &&
				ev.Kind == telemetry.KindForward:
				fwdCompletes++
			}
		}
		if wedged && fwdCompletes >= wedgeSeq {
			break
		}
		select {
		case <-deadline:
			cancel()
			t.Fatalf("wedged=%v with %d/%d forward completes visible mid-stall: batcher not flushed before hang",
				wedged, fwdCompletes, wedgeSeq)
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("wedged run finished without error despite cancellation")
	}
}
