// Package prefetch is the concurrent execution plane's per-stage GPU
// memory context: a thread-safe prefetching layer cache with the same
// semantics — and the same Stats shape — as the discrete-event
// internal/memctx manager, transposed from simulated time to wall clock.
//
// Where memctx.Manager is advanced by a simulator clock and owned by one
// event loop, a Cache is shared between a stage goroutine (Acquire/
// Release/Evict around each forward and backward), the stage's async
// prefetcher goroutine, and neighbouring stages issuing cross-stage
// prefetches. All state is guarded by one mutex; copy completion is a
// deadline (time.Time) rather than a channel, so issuing a prefetch
// never blocks and only Acquire — the point where the paper's stage
// stalls — ever sleeps.
//
// The PCIe model matches memctx: one channel per stage, copies serialize
// on it, and a copy takes bytes/bandwidth milliseconds scaled by a
// configurable wall-clock factor. A zero factor models instant copies
// (the default for tests and benches, where stage compute is itself only
// a scheduler yield); a positive factor makes late prefetches and
// synchronous-fetch stalls observable in real time.
//
// The cache-hit metric follows the paper exactly: an access counts as a
// hit iff the layer already resides in GPU memory when activated.
package prefetch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"naspipe/internal/memctx"
	"naspipe/internal/supernet"
	"naspipe/internal/telemetry"
)

// Stats is the memctx stats shape: the two planes report the same
// counters so table and bench code renders either uniformly.
type Stats = memctx.Stats

type entry struct {
	bytes   int64
	readyAt time.Time // copy completion; resident once now >= readyAt
	lastUse uint64    // LRU tick
	locked  int       // lock count across concurrently executing tasks
}

// Cache is one stage's thread-safe GPU memory cache over the supernet's
// layers. The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int64 // bytes; <0 means unbounded
	nsPerB   float64
	pcieFree time.Time
	used     int64
	tick     uint64
	entries  map[supernet.LayerID]*entry
	stats    Stats

	// tel, when non-nil, receives prefetch/hit/miss/stall/evict events
	// attributed to stage (see WithTelemetry). Never emitted to on the
	// default path: a nil bus keeps every method allocation-free.
	tel   *telemetry.Bus
	stage int32
}

// New returns a cache with the given byte capacity (negative = unbounded)
// and PCIe bandwidth in bytes per millisecond. scale converts modeled
// copy milliseconds into wall-clock delay: 0 models instant copies, 1
// plays them out in real time.
func New(capacity int64, bandwidthBytesPerMs, scale float64) *Cache {
	if bandwidthBytesPerMs <= 0 {
		panic(fmt.Sprintf("prefetch: invalid bandwidth %f", bandwidthBytesPerMs))
	}
	if scale < 0 {
		panic(fmt.Sprintf("prefetch: negative time scale %f", scale))
	}
	return &Cache{
		capacity: capacity,
		nsPerB:   scale * float64(time.Millisecond) / bandwidthBytesPerMs,
		entries:  make(map[supernet.LayerID]*entry),
	}
}

// WithTelemetry attaches a bus and stage attribution to the cache's
// event emissions and returns the cache. Call before sharing the cache
// across goroutines.
func (c *Cache) WithTelemetry(tel *telemetry.Bus, stage int32) *Cache {
	c.tel = tel
	c.stage = stage
	return c
}

// emit publishes one instant event attributed to this cache's stage.
func (c *Cache) emit(op telemetry.Op, worker, subnet int32, kind int8, arg int64) {
	if c.tel == nil {
		return
	}
	c.tel.Emit(telemetry.Event{
		Op: op, Phase: telemetry.PhaseInstant,
		Stage: c.stage, Worker: worker, Subnet: subnet, Kind: kind, Arg: arg,
	})
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Used returns the current resident (plus in-flight) byte count.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured capacity (<0 = unbounded).
func (c *Cache) Capacity() int64 { return c.capacity }

// Resident reports whether the layer is fully resident now.
func (c *Cache) Resident(id supernet.LayerID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[id]
	return e != nil && !e.readyAt.After(time.Now())
}

// copyDone reserves the PCIe channel for bytes starting no earlier than
// now and returns the completion deadline. Caller holds c.mu.
func (c *Cache) copyDone(bytes int64, now time.Time) time.Time {
	start := now
	if c.pcieFree.After(start) {
		start = c.pcieFree
	}
	done := start.Add(time.Duration(float64(bytes) * c.nsPerB))
	c.pcieFree = done
	return done
}

// Prefetch issues an asynchronous copy of the layer if it is neither
// resident nor in flight. The call never blocks: the copy's completion is
// a deadline the later Acquire checks. If capacity pressure cannot be
// relieved by evicting unlocked entries, the prefetch is dropped and
// counted (the paper's "delays the operator copy"); the later Acquire
// fetches synchronously.
func (c *Cache) Prefetch(id supernet.LayerID, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; ok {
		return
	}
	now := time.Now()
	c.emit(telemetry.OpPrefetchRequest, telemetry.WorkerMem, -1, telemetry.KindNone, bytes)
	if !c.makeRoom(bytes, now) {
		c.stats.DroppedPrefetches++
		c.emit(telemetry.OpPrefetchDrop, telemetry.WorkerMem, -1, telemetry.KindNone, bytes)
		return
	}
	done := c.copyDone(bytes, now)
	if c.tel != nil {
		// Land on the modeled PCIe channel at the copy's deadline; copies
		// serialize on pcieFree so these are monotone per stage.
		c.tel.EmitAt(c.tel.Now()+int64(done.Sub(now)), telemetry.Event{
			Op: telemetry.OpPrefetchLand, Phase: telemetry.PhaseInstant,
			Stage: c.stage, Worker: telemetry.WorkerPCIe,
			Subnet: -1, Kind: telemetry.KindNone, Arg: bytes,
		})
	}
	c.tick++
	c.entries[id] = &entry{bytes: bytes, readyAt: done, lastUse: c.tick}
	c.used += bytes
	c.stats.Prefetches++
	c.stats.SwapInBytes += bytes
	if c.used > c.stats.PeakBytes {
		c.stats.PeakBytes = c.used
	}
}

// NoteDropped counts a prefetch request abandoned before reaching the
// cache (e.g. a full prefetcher queue), keeping every dropped fetch
// attributable in the same counter.
func (c *Cache) NoteDropped() {
	c.mu.Lock()
	c.stats.DroppedPrefetches++
	c.mu.Unlock()
	c.emit(telemetry.OpPrefetchDrop, telemetry.WorkerMem, -1, telemetry.KindNone, 0)
}

// Acquire makes every listed layer resident and locked, counting hits and
// misses, and blocks until all copies have completed. It returns the
// total stall (wall-clock time slept). The caller must Release the same
// ids when the task finishes.
func (c *Cache) Acquire(ids []supernet.LayerID, bytes func(supernet.LayerID) int64) time.Duration {
	return c.AcquireFor(ids, bytes, -1, telemetry.KindNone)
}

// AcquireFor is Acquire with task attribution: hit/miss instants and the
// stall span (if any) carry the acquiring task's subnet and kind, so the
// event stream can charge memory waits to the task that suffered them.
func (c *Cache) AcquireFor(ids []supernet.LayerID, bytes func(supernet.LayerID) int64, subnet int32, kind int8) time.Duration {
	var stall time.Duration
	var hits, misses, late int64
	for _, id := range ids {
		c.mu.Lock()
		now := time.Now()
		e := c.entries[id]
		switch {
		case e != nil && !e.readyAt.After(now):
			c.stats.Hits++
			hits++
		case e != nil:
			// In flight: a prefetch was issued but has not completed.
			c.stats.Misses++
			c.stats.LatePrefetches++
			misses++
			late++
		default:
			// Absent: synchronous fetch, serialized on the channel.
			c.stats.Misses++
			misses++
			b := bytes(id)
			if !c.makeRoom(b, now) {
				c.stats.OverCapacity++
			}
			e = &entry{bytes: b, readyAt: c.copyDone(b, now)}
			c.entries[id] = e
			c.used += b
			c.stats.SwapInBytes += b
			if c.used > c.stats.PeakBytes {
				c.stats.PeakBytes = c.used
			}
		}
		e.locked++
		c.tick++
		e.lastUse = c.tick
		wait := e.readyAt.Sub(now)
		c.mu.Unlock()
		if wait > 0 {
			// Stall outside the lock: prefetcher and neighbour goroutines
			// keep the cache serviceable while this stage waits on PCIe.
			time.Sleep(wait)
			stall += wait
		}
	}
	// Hit/miss events are aggregated per acquire and emitted outside the
	// lock — one event per outcome instead of one per layer id — with Arg
	// carrying the layer count (the bus counters add Arg for these ops, so
	// Snapshot stays per-layer-exact). Late (in-flight) misses remain
	// distinguishable in Stats; per-event they fold into the miss count.
	if hits > 0 {
		c.emit(telemetry.OpCacheHit, telemetry.WorkerStage, subnet, kind, hits)
	}
	if misses > 0 {
		c.emit(telemetry.OpCacheMiss, telemetry.WorkerStage, subnet, kind, misses)
	}
	if stall > 0 {
		c.mu.Lock()
		c.stats.StallMs += float64(stall) / float64(time.Millisecond)
		c.mu.Unlock()
		if c.tel != nil {
			// Backdated span covering the accumulated sleep, nested inside
			// the caller's open task span; Arg carries the nanoseconds.
			end := c.tel.Now()
			ev := telemetry.Event{
				Op: telemetry.OpCacheStall, Phase: telemetry.PhaseBegin,
				Stage: c.stage, Worker: telemetry.WorkerStage,
				Subnet: subnet, Kind: kind, Arg: int64(stall),
			}
			c.tel.EmitAt(end-int64(stall), ev)
			ev.Phase = telemetry.PhaseEnd
			c.tel.EmitAt(end, ev)
		}
	}
	return stall
}

// Release unlocks previously acquired layers.
func (c *Cache) Release(ids []supernet.LayerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		if e := c.entries[id]; e != nil && e.locked > 0 {
			e.locked--
			c.tick++
			e.lastUse = c.tick
		}
	}
}

// Evict writes the listed layers back to pinned CPU storage and frees
// their GPU residency. Locked layers are skipped. Eviction traffic never
// stalls compute directly.
func (c *Cache) Evict(ids []supernet.LayerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for _, id := range ids {
		e := c.entries[id]
		if e == nil || e.locked > 0 {
			continue
		}
		freed += e.bytes
		c.evictEntry(id, e)
	}
	if freed > 0 {
		c.emit(telemetry.OpCacheEvict, telemetry.WorkerMem, -1, telemetry.KindNone, freed)
	}
}

// evictEntry drops one entry. Caller holds c.mu.
func (c *Cache) evictEntry(id supernet.LayerID, e *entry) {
	delete(c.entries, id)
	c.used -= e.bytes
	c.stats.SwapOutBytes += e.bytes
}

// makeRoom evicts LRU unlocked resident entries until newBytes fits.
// Returns false if the capacity cannot be reached (everything resident is
// locked or still in flight). Caller holds c.mu.
func (c *Cache) makeRoom(newBytes int64, now time.Time) bool {
	if c.capacity < 0 {
		return true
	}
	if c.used+newBytes <= c.capacity {
		return true
	}
	type cand struct {
		id supernet.LayerID
		e  *entry
	}
	var cands []cand
	for id, e := range c.entries {
		// In-flight entries are never evicted (their copy is still
		// occupying the channel).
		if e.locked == 0 && !e.readyAt.After(now) {
			cands = append(cands, cand{id, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].e.lastUse != cands[j].e.lastUse {
			return cands[i].e.lastUse < cands[j].e.lastUse
		}
		return cands[i].id < cands[j].id
	})
	var freed int64
	for _, cd := range cands {
		if c.used+newBytes <= c.capacity {
			break
		}
		freed += cd.e.bytes
		c.evictEntry(cd.id, cd.e)
		c.stats.EvictionsForced++
	}
	if freed > 0 {
		c.emit(telemetry.OpCacheEvict, telemetry.WorkerMem, -1, telemetry.KindNone, freed)
	}
	return c.used+newBytes <= c.capacity
}
