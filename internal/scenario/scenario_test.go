package scenario

import (
	"context"
	"strings"
	"testing"

	"naspipe"
)

// validScenario is the mutation base for the invariant table: a small
// single-job world that passes every check.
func validScenario() *Scenario {
	return &Scenario{
		Name: "test-world",
		World: World{
			GPUs: 4,
		},
		Workload: Workload{
			Space:       "NLP.c3",
			ScaleBlocks: 8, ScaleChoices: 3,
			Subnets: 12,
			Seed:    7,
		},
	}
}

func fptr(v float64) *float64 { return &v }
func iptr(v int) *int         { return &v }

// TestScenarioInvariants drives every invariant row to a violation and
// asserts the structured error names exactly the offending field — the
// contract the CLI test re-checks on the other surface.
func TestScenarioInvariants(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		field   string
		wantMsg string
	}{
		{"bad version", func(s *Scenario) { s.ScenarioVersion = "v9" }, "scenario_version", "unsupported version"},
		{"empty name", func(s *Scenario) { s.Name = "" }, "name", "not a slug"},
		{"uppercase name", func(s *Scenario) { s.Name = "Crash-Storm" }, "name", "not a slug"},
		{"zero gpus", func(s *Scenario) { s.World.GPUs = 0 }, "world.gpus", "must be positive"},
		{"speeds wrong length", func(s *Scenario) { s.World.StageSpeeds = []float64{1, 2} }, "world.stage_speeds", "one speed factor per GPU"},
		{"zero speed", func(s *Scenario) { s.World.StageSpeeds = []float64{1, 0, 1, 1} }, "world.stage_speeds", "positive and finite"},
		{"jitter out of range", func(s *Scenario) { s.World.Jitter = 1 }, "world.jitter", "[0, 1)"},
		{"negative jitter", func(s *Scenario) { s.World.Jitter = -0.1 }, "world.jitter", "[0, 1)"},
		{"processes not one per stage", func(s *Scenario) { s.World.Processes = 2 }, "world.processes", "must equal gpus"},
		{"processes with jobs", func(s *Scenario) {
			s.World.Processes = 4
			s.Workload.Jobs = []JobLoad{{Tenant: "a"}}
		}, "world.processes", "single-job"},
		{"processes with elastic", func(s *Scenario) {
			s.World.Processes = 4
			s.Storm = &Storm{Elastic: true}
		}, "world.processes", "elastic"},
		{"missing space", func(s *Scenario) { s.Workload.Space = "" }, "workload.space", "required"},
		{"unknown space", func(s *Scenario) { s.Workload.Space = "NLP.c9" }, "workload.space", "unknown"},
		{"half scaling", func(s *Scenario) { s.Workload.ScaleChoices = 0 }, "workload.scale_blocks", "both or neither"},
		{"zero subnets", func(s *Scenario) { s.Workload.Subnets = 0 }, "workload.subnets", "must be positive"},
		{"negative window", func(s *Scenario) { s.Workload.Window = -1 }, "workload.window", "negative"},
		{"negative cache factor", func(s *Scenario) { s.Workload.CacheFactor = fptr(-1) }, "workload.cache_factor", "negative"},
		{"predictor without cache", func(s *Scenario) {
			s.Workload.Predictor = true
			s.Workload.CacheFactor = fptr(0)
		}, "workload.predictor", "requires a cache"},
		{"unknown arrival", func(s *Scenario) {
			s.Workload.Jobs = []JobLoad{{Tenant: "a"}}
			s.Workload.Arrival = "poisson"
		}, "workload.arrival", "unknown arrival"},
		{"arrival without jobs", func(s *Scenario) { s.Workload.Arrival = "burst" }, "workload.arrival", "needs workload.jobs"},
		{"job negative subnets", func(s *Scenario) {
			s.Workload.Jobs = []JobLoad{{Subnets: -3}}
		}, "workload.jobs", "negative subnets"},
		{"job negative delay", func(s *Scenario) {
			s.Workload.Jobs = []JobLoad{{DelayMs: -1}}
		}, "workload.jobs", "negative delay_ms"},
		{"job bad faults", func(s *Scenario) {
			s.Workload.Jobs = []JobLoad{{Faults: "crashat=banana"}}
		}, "workload.jobs", "crashat"},
		{"bad storm faults", func(s *Scenario) {
			s.Storm = &Storm{Faults: "seed=1,crashat=1:2:3:Q"}
		}, "storm.faults", "crashat"},
		{"negative expected restarts", func(s *Scenario) {
			s.Expect = &Expect{Restarts: iptr(-1)}
		}, "expect.restarts", "negative"},
		{"negative min restarts", func(s *Scenario) {
			s.Expect = &Expect{MinRestarts: -1}
		}, "expect.restarts", "negative min_restarts"},
		{"negative watchdog fires", func(s *Scenario) {
			s.Expect = &Expect{WatchdogFires: iptr(-1)}
		}, "expect.watchdog_fires", "negative"},
		{"negative final gpus", func(s *Scenario) {
			s.Expect = &Expect{FinalGPUs: -2}
		}, "expect.final_gpus", "negative"},
		// Violations caught by the compiled JobSpec's own kernel must
		// surface through the same spec-error type with the spec's field.
		{"supervise negative budget", func(s *Scenario) {
			s.Storm = &Storm{Supervise: &naspipe.SuperviseSpec{MaxRestarts: -1}}
		}, "supervise", "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validScenario()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the mutation")
			}
			if got := naspipe.SpecField(err); got != tc.field {
				t.Fatalf("error %q names field %q, want %q", err, got, tc.field)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

func TestScenarioValidAccepted(t *testing.T) {
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestParseStrictness: unknown fields anywhere and trailing documents
// are decode-time errors, before any invariant runs.
func TestParseStrictness(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","world":{"gpus":2,"turbo":true},"workload":{"space":"NLP.c1","subnets":4,"seed":1}}`)); err == nil {
		t.Fatalf("unknown nested field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","world":{"gpus":2},"workload":{"space":"NLP.c1","subnets":4,"seed":1}} {}`)); err == nil {
		t.Fatalf("trailing document accepted")
	}
	if _, err := Parse([]byte(`{"nmae":"x"}`)); err == nil {
		t.Fatalf("misspelled top-level field accepted")
	}
}

// TestParseEncodeFixedPoint is the deterministic cousin of
// FuzzScenarioParse: canonical form re-parses to identical bytes.
func TestParseEncodeFixedPoint(t *testing.T) {
	s := validScenario()
	s.World.StageSpeeds = []float64{1, 2.5, 1, 1}
	s.Workload.CacheFactor = fptr(1.5)
	s.Storm = &Storm{Faults: "seed=3,crashat=1:2:5:F,drop=0.1"}
	s.Expect = &Expect{Restarts: iptr(1)}
	first, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(first)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	second, err := Encode(re)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("Parse∘Encode is not a fixed point:\n%s\nvs\n%s", first, second)
	}
}

// TestCompileSingleAndMulti checks the lowering: executor, verification,
// defaults, per-job seed skew, and checkpoint placement.
func TestCompileSingleAndMulti(t *testing.T) {
	s := validScenario()
	comp, err := s.Compile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if comp.MultiJob || len(comp.Jobs) != 1 {
		t.Fatalf("single-job scenario compiled to %d jobs, multi=%v", len(comp.Jobs), comp.MultiJob)
	}
	spec := comp.Jobs[0].Spec
	if spec.Executor != "concurrent" || !spec.Verify || spec.Train == nil {
		t.Fatalf("lowering lost the concurrent+verify+train contract: %+v", spec)
	}
	if spec.Checkpoint == "" {
		t.Fatalf("single job has no checkpoint path")
	}

	s = validScenario()
	s.Workload.Jobs = []JobLoad{
		{Tenant: "a"},
		{Tenant: "b", Name: "custom", Subnets: 6, Seed: 99, Faults: "seed=2,crashat=1:1:3:F"},
	}
	comp, err = s.Compile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !comp.MultiJob || len(comp.Jobs) != 2 {
		t.Fatalf("multi-job scenario compiled to %d jobs, multi=%v", len(comp.Jobs), comp.MultiJob)
	}
	j0, j1 := comp.Jobs[0].Spec, comp.Jobs[1].Spec
	if j0.Seed != s.Workload.Seed || j1.Seed != 99 {
		t.Fatalf("seed skew wrong: job0 %d job1 %d", j0.Seed, j1.Seed)
	}
	if j0.Name != "test-world-0" || j1.Name != "custom" {
		t.Fatalf("names wrong: %q %q", j0.Name, j1.Name)
	}
	if j1.Subnets != 6 || j1.Faults == "" {
		t.Fatalf("per-job overrides lost: %+v", j1)
	}
	if j0.Checkpoint == j1.Checkpoint {
		t.Fatalf("jobs share a checkpoint path %q", j0.Checkpoint)
	}
}

// TestRunCalmScenario: the simplest end-to-end pass — no faults, bitwise
// verified, zero restarts, deterministic sim columns.
func TestRunCalmScenario(t *testing.T) {
	s := validScenario()
	s.Expect = &Expect{Restarts: iptr(0)}
	cell, obs, err := Run(context.Background(), s, Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Failures) > 0 {
		t.Fatalf("calm scenario failed gates: %v", cell.Failures)
	}
	if !cell.Verified || cell.Checksum == "" {
		t.Fatalf("calm scenario not verified: %+v", cell)
	}
	if cell.ThroughputSubnetsPerHour <= 0 || cell.Batch <= 0 {
		t.Fatalf("sim columns empty: %+v", cell)
	}
	if obs.Wall <= 0 {
		t.Fatalf("no wall-clock observation")
	}
	if obs.Recovery != 0 {
		t.Fatalf("calm scenario observed a recovery: %v", obs.Recovery)
	}

	// Same scenario, fresh state: the cell must be byte-for-byte
	// reproducible (the property the golden sweep scales up).
	cell2, _, err := Run(context.Background(), s, Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := EncodeScorecard([]Cell{cell})
	b2, _ := EncodeScorecard([]Cell{cell2})
	if string(b1) != string(b2) {
		t.Fatalf("calm cell not reproducible:\n%s\nvs\n%s", b1, b2)
	}
}

// TestRunDistributedScenario: a world.processes cell runs the job on
// the distributed plane (coordinator + in-proc stage workers over
// Transport links) and must land on the same bitwise checksum as the
// single-process cell — the contract the World.Processes doc states.
func TestRunDistributedScenario(t *testing.T) {
	s := validScenario()
	s.Name = "test-fleet"
	s.World.Processes = 4
	cell, _, err := Run(context.Background(), s, Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Failures) > 0 {
		t.Fatalf("distributed scenario failed gates: %v", cell.Failures)
	}
	if !cell.Verified || cell.Checksum == "" {
		t.Fatalf("distributed cell not verified: %+v", cell)
	}
	if cell.Processes != 4 {
		t.Fatalf("cell.Processes = %d, want 4", cell.Processes)
	}

	// The same world minus the fleet: checksums must agree bitwise.
	solo := validScenario()
	soloCell, _, err := Run(context.Background(), solo, Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if soloCell.Checksum != cell.Checksum {
		t.Fatalf("distributed checksum %s != single-process %s", cell.Checksum, soloCell.Checksum)
	}
}

// TestMatrixCell: the migration shim produces valid scenarios with the
// historic workload geometry and folds fault sites into range.
func TestMatrixCell(t *testing.T) {
	s, err := MatrixCell("deep fwd", "seed=105,crashat=7:12:F,dup=0.1", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "deep-fwd-gpus2" {
		t.Fatalf("slug %q", s.Name)
	}
	if s.World.GPUs != 2 || s.Workload.Subnets != 18 || s.Workload.Seed != 7 {
		t.Fatalf("matrix geometry drifted: %+v", s)
	}
	if s.Storm == nil || s.Storm.Supervise == nil {
		t.Fatalf("supervised cell lost its storm/supervision: %+v", s.Storm)
	}
	// Stage 7 folded to 7 % 2 = 1.
	if !strings.Contains(s.Storm.Faults, "crashat=1:12:F") {
		t.Fatalf("crash site not folded into depth 2: %q", s.Storm.Faults)
	}
	if _, err := MatrixCell("x", "crashat=zig", 2, false); err == nil {
		t.Fatalf("bad fault spec accepted")
	}
}
