package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"naspipe"
	"naspipe/internal/obs"
)

// loadReport is the BENCH_service.json schema: the service plane's
// throughput and latency profile under concurrent multi-tenant load.
type loadReport struct {
	Date            string  `json:"date"`
	Clients         int     `json:"clients"`
	JobsSubmitted   int     `json:"jobs_submitted"`
	JobsCompleted   int     `json:"jobs_completed"`
	JobsVerified    int     `json:"jobs_verified"`
	CrashRestarts   int     `json:"crash_job_restarts"`
	Workers         int     `json:"workers"`
	TenantQuota     int     `json:"tenant_quota"`
	QuotaRejections int     `json:"quota_rejections_429"`
	WallSeconds     float64 `json:"wall_seconds"`
	JobsPerSecond   float64 `json:"throughput_jobs_per_sec"`
	SubmitP50Ms     float64 `json:"submit_p50_ms"`
	SubmitP99Ms     float64 `json:"submit_p99_ms"`
	StatusP50Ms     float64 `json:"status_p50_ms"`
	StatusP99Ms     float64 `json:"status_p99_ms"`
	GoroutinesLeft  int     `json:"goroutines_over_baseline_after_drain"`
	// Observability overhead gate: the same compact workload with the
	// metrics registry absent vs present (min of trials each); the
	// enabled path must stay within 5% of disabled.
	ObsDisabledWall float64 `json:"obs_disabled_wall_seconds"`
	ObsEnabledWall  float64 `json:"obs_enabled_wall_seconds"`
	ObsOverheadPct  float64 `json:"obs_overhead_pct"`
}

// lat is a concurrency-safe latency recorder.
type lat struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *lat) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *lat) percentileMs(p float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// verifyJobSpec is the load-test workload: a small concurrent search
// job whose finished weights are verified bitwise against the
// sequential reference by the scheduler itself.
func verifyJobSpec(tenant string, seed uint64) naspipe.JobSpec {
	return naspipe.JobSpec{
		Tenant: tenant, Space: "NLP.c3", ScaleBlocks: 8, ScaleChoices: 3,
		Executor: "concurrent", GPUs: 4, Subnets: 8, Seed: seed,
		Train:  &naspipe.TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05},
		Verify: true,
	}
}

// obsLoadTrial runs one compact HTTP workload — 4 clients × 3 verify
// jobs, each polled to completion — against a fresh daemon, with the
// observability plane absent or fully enabled (registry + HTTP
// instruments + a mid-run scrape, the realistic Prometheus shape), and
// returns the wall time.
func obsLoadTrial(t *testing.T, enabled bool) time.Duration {
	t.Helper()
	var reg *obs.Registry
	if enabled {
		reg = obs.New()
	}
	sched, err := NewScheduler(SchedulerConfig{
		StateDir: t.TempDir(), Workers: 4, QueueLimit: 64, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("obs trial scheduler: %v", err)
	}
	srv := NewServer(sched)
	if enabled {
		srv = srv.WithObs(reg, nil)
	}
	addr, shutdown, err := ServeHandler("127.0.0.1:0", srv)
	if err != nil {
		sched.Close()
		t.Fatalf("obs trial serve: %v", err)
	}
	defer func() { shutdown(); sched.Close() }()
	base := "http://" + addr
	ctx := context.Background()

	t0 := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < 4; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := NewClient(base)
			c.HTTP = &http.Client{}
			defer c.HTTP.CloseIdleConnections()
			for jn := 0; jn < 3; jn++ {
				st, err := c.Submit(ctx, verifyJobSpec(fmt.Sprintf("obs-%d", ci), uint64(3000+ci*10+jn)))
				if err != nil {
					t.Errorf("obs trial submit: %v", err)
					return
				}
				if enabled && ci == 0 && jn == 1 {
					if _, err := c.Metrics(ctx); err != nil {
						t.Errorf("obs trial scrape: %v", err)
					}
				}
				for {
					got, err := c.Get(ctx, st.ID)
					if err != nil {
						t.Errorf("obs trial status: %v", err)
						return
					}
					if got.State.Terminal() {
						if got.State != StateDone {
							t.Errorf("obs trial job %s: %s (%s)", st.ID, got.State, got.Detail)
						}
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(ci)
	}
	wg.Wait()
	return time.Since(t0)
}

// TestServiceLoad drives one daemon with 8 concurrent clients and 17
// jobs through the full submit/status/cancel/resume surface:
//
//   - every completed job's weights are bitwise-verified against the
//     sequential reference (Verify in each spec, checked by the daemon);
//   - one job carries an injected crash and must auto-resume under the
//     service's supervision with at least one restart, then verify;
//   - one job is canceled mid-run and resumed over the API;
//   - a greedy tenant is refused with 429 at its quota;
//   - after drain, no goroutines are left over (checked under -race in CI).
//
// The measured throughput and latency percentiles are written to the
// file named by NASPIPE_BENCH_OUT (the committed BENCH_service.json).
func TestServiceLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const (
		clients     = 8
		jobsPer     = 2
		workers     = 4
		tenantQuota = 4
	)
	stateDir := t.TempDir()
	sched, err := NewScheduler(SchedulerConfig{
		StateDir: stateDir, Workers: workers,
		TenantQuota: tenantQuota, QueueLimit: 64,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	addr, shutdown, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		sched.Close()
		t.Fatalf("Serve: %v", err)
	}
	base := "http://" + addr
	ctx := context.Background()

	var (
		submitLat, statusLat lat
		mu                   sync.Mutex
		completed, verified  int
		crashRestarts        int
		submitted            int
	)
	t0 := time.Now()

	// Phase 1: 8 clients, each its own tenant and HTTP connection pool,
	// submit and drive 2 verify-jobs each. Client 0's first job carries a
	// deterministic injected crash; the daemon's supervision must resume
	// it from its own checkpoint with no operator involvement.
	var wg sync.WaitGroup
	transports := make([]*http.Client, clients)
	for ci := 0; ci < clients; ci++ {
		transports[ci] = &http.Client{}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := NewClient(base)
			c.HTTP = transports[ci]
			tenant := fmt.Sprintf("tenant-%d", ci)
			for jn := 0; jn < jobsPer; jn++ {
				spec := verifyJobSpec(tenant, uint64(100+ci*10+jn))
				crashJob := ci == 0 && jn == 0
				if crashJob {
					spec.Faults = "seed=7,crashat=2:5:F"
				}
				ts := time.Now()
				st, err := c.Submit(ctx, spec)
				submitLat.add(time.Since(ts))
				if err != nil {
					t.Errorf("client %d submit: %v", ci, err)
					return
				}
				mu.Lock()
				submitted++
				mu.Unlock()
				var final JobStatus
				for {
					ts := time.Now()
					got, err := c.Get(ctx, st.ID)
					statusLat.add(time.Since(ts))
					if err != nil {
						t.Errorf("client %d status: %v", ci, err)
						return
					}
					if got.State.Terminal() {
						final = got
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if final.State != StateDone {
					t.Errorf("client %d job %s: %s (%s), want done", ci, st.ID, final.State, final.Detail)
					return
				}
				mu.Lock()
				completed++
				if final.Verified {
					verified++
				}
				if crashJob {
					crashRestarts = final.Restarts
				}
				mu.Unlock()
				if !final.Verified {
					t.Errorf("client %d job %s finished unverified: %s", ci, st.ID, final.Detail)
				}
				if crashJob && final.Restarts < 1 {
					t.Errorf("crash-injected job %s auto-resumed %d times, want >= 1", st.ID, final.Restarts)
				}
			}
		}(ci)
	}
	wg.Wait()

	// Phase 2: cancel/resume over the API. A slow jittered job is
	// canceled mid-stream and resumed; it must complete verified from its
	// committed frontier.
	opsClient := NewClient(base)
	opsClient.HTTP = transports[0]
	slow := verifyJobSpec("tenant-ops", 500)
	slow.Subnets = 64
	slow.Jitter = 0.9
	slow.JitterSeed = 500
	ts := time.Now()
	st, err := opsClient.Submit(ctx, slow)
	submitLat.add(time.Since(ts))
	if err != nil {
		t.Fatalf("ops submit: %v", err)
	}
	mu.Lock()
	submitted++
	mu.Unlock()
	for {
		got, gerr := opsClient.Get(ctx, st.ID)
		if gerr != nil {
			t.Fatalf("ops status: %v", gerr)
		}
		if got.Cursor >= 2 && got.State == StateRunning {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("ops job reached %s before mid-run cancel", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := opsClient.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("ops cancel: %v", err)
	}
	got, err := opsClient.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil || got.State != StateCanceled || !got.Resumable {
		t.Fatalf("ops cancel landed as %s resumable=%v err=%v", got.State, got.Resumable, err)
	}
	if _, err := opsClient.Resume(ctx, st.ID); err != nil {
		t.Fatalf("ops resume: %v", err)
	}
	final, err := opsClient.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil || final.State != StateDone || !final.Verified {
		t.Fatalf("ops resumed job: state %s verified %v err=%v (%s)", final.State, final.Verified, err, final.Detail)
	}
	mu.Lock()
	completed++
	verified++
	mu.Unlock()

	// Phase 3: quota enforcement. A greedy tenant fills its quota with
	// slow jobs (queued counts as active, so this is deterministic) and
	// the next submit must be refused with 429 quota_exceeded.
	quotaRejections := 0
	var greedyIDs []string
	for i := 0; i < tenantQuota; i++ {
		spec := verifyJobSpec("greedy", uint64(900+i))
		spec.Subnets = 64
		spec.Jitter = 0.9
		spec.JitterSeed = uint64(900 + i)
		st, err := opsClient.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("greedy submit %d: %v", i, err)
		}
		greedyIDs = append(greedyIDs, st.ID)
	}
	_, err = opsClient.Submit(ctx, verifyJobSpec("greedy", 999))
	ae, ok := err.(*APIError)
	if !ok || ae.Code != CodeQuotaExceeded || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %v, want 429 %q", err, CodeQuotaExceeded)
	}
	quotaRejections++
	// Another tenant is unaffected by the greedy one's quota.
	if _, err := opsClient.Submit(ctx, verifyJobSpec("tenant-1", 777)); err != nil {
		t.Fatalf("unrelated tenant blocked by another's quota: %v", err)
	}
	mu.Lock()
	submitted++
	mu.Unlock()
	for _, id := range greedyIDs {
		if _, err := opsClient.Cancel(ctx, id); err != nil {
			t.Fatalf("canceling greedy job %s: %v", id, err)
		}
	}
	// Drain everything that is still in flight.
	for _, st := range sched.List("") {
		if _, err := sched.Wait(ctx, st.ID); err != nil {
			t.Fatalf("drain wait %s: %v", st.ID, err)
		}
	}
	wall := time.Since(t0)

	// Cross-check the API's list view against per-job status.
	listed := sched.List("")
	for _, ls := range listed {
		single, err := sched.Get(ls.ID)
		if err != nil {
			t.Fatalf("get %s: %v", ls.ID, err)
		}
		if single.State != ls.State || single.Cursor != ls.Cursor {
			t.Errorf("list/status disagree for %s: list %s@%d vs status %s@%d",
				ls.ID, ls.State, ls.Cursor, single.State, single.Cursor)
		}
	}

	// Drain the daemon and hunt goroutine leaks: everything the scheduler
	// and server spawned must exit.
	shutdown()
	sched.Close()
	for _, tr := range transports {
		tr.CloseIdleConnections()
	}
	left := 0
	for deadline := time.Now().Add(10 * time.Second); ; {
		runtime.GC()
		left = runtime.NumGoroutine() - baseline
		if left <= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if left > 2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("%d goroutines over baseline after drain:\n%s", left, buf[:runtime.Stack(buf, true)])
	}

	// Phase 4: observability overhead gate. The same compact workload
	// runs with the metrics registry absent and present (min of trials
	// each, to shed scheduler noise); instrumenting every admission,
	// request, and supervision edge must cost at most 5% wall time (plus
	// a small absolute grace for sub-second runs).
	obsDisabled, obsEnabled := time.Duration(1<<62), time.Duration(1<<62)
	const obsTrials = 3
	for i := 0; i < obsTrials; i++ {
		if d := obsLoadTrial(t, false); d < obsDisabled {
			obsDisabled = d
		}
		if d := obsLoadTrial(t, true); d < obsEnabled {
			obsEnabled = d
		}
	}
	obsOverheadPct := (obsEnabled.Seconds() - obsDisabled.Seconds()) / obsDisabled.Seconds() * 100
	t.Logf("obs overhead: disabled %.3fs, enabled %.3fs (%.2f%%)", obsDisabled.Seconds(), obsEnabled.Seconds(), obsOverheadPct)
	if grace := 25 * time.Millisecond; obsEnabled > obsDisabled+obsDisabled/20+grace {
		t.Errorf("metrics-enabled load took %.3fs vs %.3fs disabled (%.2f%% > 5%% overhead budget)",
			obsEnabled.Seconds(), obsDisabled.Seconds(), obsOverheadPct)
	}

	mu.Lock()
	defer mu.Unlock()
	if completed < clients*jobsPer+1 {
		t.Fatalf("completed %d jobs, want >= %d", completed, clients*jobsPer+1)
	}
	if verified != completed {
		t.Fatalf("%d of %d completed jobs verified bitwise", verified, completed)
	}
	rep := loadReport{
		Date:            time.Now().UTC().Format("2006-01-02"),
		Clients:         clients,
		JobsSubmitted:   submitted,
		JobsCompleted:   completed,
		JobsVerified:    verified,
		CrashRestarts:   crashRestarts,
		Workers:         workers,
		TenantQuota:     tenantQuota,
		QuotaRejections: quotaRejections,
		WallSeconds:     wall.Seconds(),
		JobsPerSecond:   float64(completed) / wall.Seconds(),
		SubmitP50Ms:     submitLat.percentileMs(0.50),
		SubmitP99Ms:     submitLat.percentileMs(0.99),
		StatusP50Ms:     statusLat.percentileMs(0.50),
		StatusP99Ms:     statusLat.percentileMs(0.99),
		GoroutinesLeft:  left,
		ObsDisabledWall: obsDisabled.Seconds(),
		ObsEnabledWall:  obsEnabled.Seconds(),
		ObsOverheadPct:  obsOverheadPct,
	}
	t.Logf("load: %d jobs in %.2fs (%.1f jobs/s), submit p99 %.2fms, status p99 %.2fms",
		rep.JobsCompleted, rep.WallSeconds, rep.JobsPerSecond, rep.SubmitP99Ms, rep.StatusP99Ms)
	if out := os.Getenv("NASPIPE_BENCH_OUT"); out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("encoding load report: %v", err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("load report written to %s", out)
	}
}
