package scenario

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"naspipe"
	"naspipe/internal/distrib"
	"naspipe/internal/service"
)

// Options configures one scenario execution.
type Options struct {
	// StateDir roots the scenario's checkpoints and (for multi-job
	// scenarios) the service scheduler's per-job state. Required.
	StateDir string
	// Workers is the service executor-pool size for multi-job
	// scenarios (0 = 2).
	Workers int
	// MaxResumes bounds the operator resume loop for unsupervised
	// crashing scenarios (0 = 60).
	MaxResumes int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Observed carries the wall-clock side of a scenario run: real, useful,
// and inherently nondeterministic — which is why it is returned beside
// the Cell instead of inside it. The harness prints it; the scorecard
// never contains it.
type Observed struct {
	// Wall is the concurrent pass's total wall time.
	Wall time.Duration
	// Recovery is the wall time from the first failure (crash or
	// watchdog fire) to completion; 0 when nothing failed.
	Recovery time.Duration
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Run executes one scenario end to end and scores it:
//
//  1. A fault-free pass on the simulated plane models the declared
//     world (GPUs, stage speeds, jitter, cache budget) and yields the
//     deterministic performance columns (throughput, bubble, cache).
//  2. The real pass runs every job on the concurrent executor under
//     the declared storm — supervised, operator-resumed, or through
//     the service Scheduler for multi-job scenarios — and verifies
//     each job's weights bitwise against the sequential reference.
//  3. The Expect block's gates are applied; violations land in
//     Cell.Failures.
//
// The returned error reports infrastructure problems only (bad state
// dir, compile failure); a scenario that runs but fails its gates
// returns a Cell with Failures and a nil error.
func Run(ctx context.Context, s *Scenario, opt Options) (Cell, Observed, error) {
	if opt.StateDir == "" {
		return Cell{}, Observed{}, fmt.Errorf("scenario: Options.StateDir is required")
	}
	dir := filepath.Join(opt.StateDir, s.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Cell{}, Observed{}, err
	}
	comp, err := s.Compile(dir)
	if err != nil {
		return Cell{}, Observed{}, err
	}

	cell := Cell{Scenario: s.Name, Jobs: len(comp.Jobs), GPUs: s.World.GPUs,
		Processes: s.World.Processes, FinalGPUs: s.World.GPUs}
	for _, j := range comp.Jobs {
		cell.Subnets += j.Spec.Subnets
	}
	if err := simPass(comp, &cell); err != nil {
		return Cell{}, Observed{}, err
	}

	var obs Observed
	start := time.Now()
	switch {
	case comp.MultiJob:
		err = serviceRun(ctx, comp, opt, &cell)
	case s.World.Processes > 0:
		err = distribRun(ctx, s, comp.Jobs[0].Spec, opt, &cell, &obs)
	default:
		err = directRun(ctx, comp.Jobs[0].Spec, opt, &cell, &obs)
	}
	obs.Wall = time.Since(start)
	if err != nil {
		return Cell{}, obs, err
	}
	gate(s.Expect, &cell)
	return cell, obs, nil
}

// simPass fills the deterministic performance columns from fault-free
// simulated runs of each job's world/workload. The simulated plane's
// discrete-event clock makes throughput, bubble ratio, and cache hit
// rate pure functions of the scenario — scorecard-safe.
func simPass(comp *Compiled, cell *Cell) error {
	var hitSum float64
	hitCells := 0
	cell.CacheHitRate = -1
	for _, j := range comp.Jobs {
		cfg, err := j.Spec.Config()
		if err != nil {
			return err
		}
		cfg.RecordTrace = false
		if j.Spec.CacheFactor != nil {
			cfg.SimCacheFactor = *j.Spec.CacheFactor
		}
		policy := j.Spec.Policy
		if policy == "" {
			policy = "naspipe"
		}
		res, err := naspipe.RunPolicy(cfg, policy)
		if err != nil {
			return fmt.Errorf("scenario %s: simulated pass: %w", comp.Scenario.Name, err)
		}
		if res.Failed {
			return fmt.Errorf("scenario %s: simulated pass failed: %s", comp.Scenario.Name, res.FailReason)
		}
		cell.ThroughputSubnetsPerHour += res.SubnetsPerHour
		cell.BubbleRatio += res.BubbleRatio
		if cell.Batch == 0 || res.Batch < cell.Batch {
			cell.Batch = res.Batch
		}
		if res.CacheHitRate >= 0 {
			hitSum += res.CacheHitRate
			hitCells++
		}
	}
	n := float64(len(comp.Jobs))
	cell.ThroughputSubnetsPerHour = round6(cell.ThroughputSubnetsPerHour)
	cell.BubbleRatio = round6(cell.BubbleRatio / n)
	if hitCells > 0 {
		cell.CacheHitRate = round6(hitSum / float64(hitCells))
	}
	return nil
}

// directRun executes a single-job scenario on a Runner: supervised when
// the storm says so, otherwise with the operator resume loop (run,
// catch CrashError, resume from the checkpoint until the stream
// completes). Either way the final result is verified bitwise.
func directRun(ctx context.Context, spec naspipe.JobSpec, opt Options, cell *Cell, obs *Observed) error {
	opts, cfg, err := naspipe.FromSpec(spec)
	if err != nil {
		return err
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		return err
	}

	var res naspipe.Result
	if sc, ok := spec.SuperviseConfig(); ok {
		var firstFail time.Time
		sc.Observer = func(tr naspipe.HealthTransition) {
			switch tr.To {
			case naspipe.HealthDegraded:
				if firstFail.IsZero() {
					firstFail = time.Now()
				}
			case naspipe.HealthDone:
				if !firstFail.IsZero() {
					obs.Recovery = time.Since(firstFail)
				}
			}
		}
		var rep *naspipe.SuperviseReport
		res, rep, err = r.RunSupervised(ctx, cfg, sc)
		if rep != nil {
			cell.Restarts = rep.Restarts
			cell.WatchdogFires = rep.WatchdogFires
			if rep.FinalGPUs > 0 {
				cell.FinalGPUs = rep.FinalGPUs
			}
		}
		if err != nil {
			cell.Failures = append(cell.Failures, fmt.Sprintf("supervised run: %v", err))
			return nil
		}
	} else {
		res, err = operatorLoop(ctx, r, cfg, spec, opt, cell, obs)
		if err != nil {
			return err
		}
		if len(cell.Failures) > 0 {
			return nil
		}
	}

	return verifyCell(spec, cfg, res, cell)
}

// verifyCell closes out a single-job cell: coverage, then independent
// bitwise verification of the result against the sequential reference.
func verifyCell(spec naspipe.JobSpec, cfg naspipe.Config, res naspipe.Result, cell *Cell) error {
	if res.BaseSeq+res.Completed != spec.Subnets {
		cell.Failures = append(cell.Failures,
			fmt.Sprintf("coverage hole: base %d + completed %d != %d subnets", res.BaseSeq, res.Completed, spec.Subnets))
		return nil
	}
	tc, ok := spec.TrainConfig()
	if !ok {
		return fmt.Errorf("scenario: compiled spec lost its train plane")
	}
	sum, verr := naspipe.VerifyAgainstSequential(tc, cfg, res)
	if verr != nil {
		cell.Failures = append(cell.Failures, fmt.Sprintf("bitwise verification: %v", verr))
		return nil
	}
	cell.Verified = true
	cell.Checksum = fmt.Sprintf("%016x", sum)
	return nil
}

// distribRun executes a single-job scenario on the distributed
// execution plane: a coordinator with one stage worker per GPU (the
// in-process launcher — same worker code and TCP frames as separate OS
// processes, hermetic for the sweep). The coordinator supervises,
// relaunches the fleet on any worker death, and merges the workers'
// observed traces; the cell then re-verifies the merged result bitwise
// exactly like the single-process path, so `processes` shows up
// nowhere in the checksum — only in how the work was executed.
func distribRun(ctx context.Context, s *Scenario, spec naspipe.JobSpec, opt Options, cell *Cell, obs *Observed) error {
	co, err := distrib.NewCoordinator(distrib.CoordConfig{
		Spec:     spec,
		RunID:    "scenario-" + s.Name,
		Launcher: &distrib.InProcLauncher{Log: opt.Log},
		Log:      opt.Log,
	})
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	start := time.Now()
	res, rep, err := co.Run(ctx)
	if rep != nil {
		cell.Restarts = rep.Restarts
		cell.WatchdogFires = rep.WatchdogFires
		if rep.FinalGPUs > 0 {
			cell.FinalGPUs = rep.FinalGPUs
		}
		if rep.Restarts > 0 {
			obs.Recovery = time.Since(start)
		}
	}
	if err != nil {
		cell.Failures = append(cell.Failures, fmt.Sprintf("distributed fleet: %v", err))
		return nil
	}
	cfg, err := spec.Config()
	if err != nil {
		return err
	}
	return verifyCell(spec, cfg, res, cell)
}

// operatorLoop is the unsupervised recovery discipline the crash-resume
// matrix always used: run, and on every injected crash reload the
// checkpoint (checking the incarnation bump), resume, repeat. Returns
// the final complete Result.
func operatorLoop(ctx context.Context, r *naspipe.Runner, cfg naspipe.Config, spec naspipe.JobSpec, opt Options, cell *Cell, obs *Observed) (naspipe.Result, error) {
	maxResumes := opt.MaxResumes
	if maxResumes <= 0 {
		maxResumes = 60
	}
	var firstFail time.Time
	res, err := r.Run(ctx, cfg)
	for resumes := 0; err != nil; resumes++ {
		var crash *naspipe.CrashError
		if !errors.As(err, &crash) {
			return res, fmt.Errorf("scenario %s: non-crash failure: %w", spec.Name, err)
		}
		if firstFail.IsZero() {
			firstFail = time.Now()
		}
		if resumes >= maxResumes {
			cell.Failures = append(cell.Failures, fmt.Sprintf("still crashing after %d resumes: %v", maxResumes, err))
			return res, nil
		}
		ck, lerr := naspipe.LoadCheckpoint(spec.Checkpoint)
		if lerr != nil {
			return res, fmt.Errorf("scenario %s: crash left no loadable checkpoint: %w", spec.Name, lerr)
		}
		if ck.Incarnation != crash.Incarnation+1 {
			return res, fmt.Errorf("scenario %s: checkpoint incarnation %d after crash in incarnation %d (want bump to %d)",
				spec.Name, ck.Incarnation, crash.Incarnation, crash.Incarnation+1)
		}
		cell.Restarts++
		opt.logf("scenario %s: resume %d after %v", spec.Name, resumes+1, crash)
		res, err = r.Resume(ctx, cfg)
	}
	if !firstFail.IsZero() {
		obs.Recovery = time.Since(firstFail)
	}
	return res, nil
}

// serviceRun executes a multi-job scenario through an in-process
// service Scheduler: every job is submitted under its tenant (burst or
// staggered arrival), supervised and verified by the service plane
// exactly as a naspiped deployment would, then awaited.
func serviceRun(ctx context.Context, comp *Compiled, opt Options, cell *Cell) error {
	sched, err := service.NewScheduler(service.SchedulerConfig{
		StateDir:    filepath.Join(opt.StateDir, comp.Scenario.Name, "service"),
		Workers:     opt.Workers,
		QueueLimit:  len(comp.Jobs) + 16,
		TenantQuota: len(comp.Jobs) + 8,
		Log:         opt.Log,
	})
	if err != nil {
		return err
	}
	defer sched.Close()

	staggered := comp.Scenario.Workload.Arrival == "staggered"
	ids := make([]string, 0, len(comp.Jobs))
	for _, j := range comp.Jobs {
		if staggered && j.DelayMs > 0 {
			select {
			case <-time.After(time.Duration(j.DelayMs) * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		st, err := sched.Submit(j.Spec)
		if err != nil {
			return fmt.Errorf("scenario %s: submit %s: %w", comp.Scenario.Name, j.Spec.Name, err)
		}
		ids = append(ids, st.ID)
	}

	h := fnv.New64a()
	allVerified := true
	for i, id := range ids {
		st, err := sched.Wait(ctx, id)
		if err != nil {
			return fmt.Errorf("scenario %s: wait %s: %w", comp.Scenario.Name, id, err)
		}
		cell.Restarts += st.Restarts
		cell.WatchdogFires += st.WatchdogFires
		if st.State != service.StateDone {
			allVerified = false
			cell.Failures = append(cell.Failures,
				fmt.Sprintf("job %s (%s) ended %s: %s", comp.Jobs[i].Spec.Name, id, st.State, st.Detail))
			continue
		}
		if !st.Verified {
			allVerified = false
			cell.Failures = append(cell.Failures,
				fmt.Sprintf("job %s (%s) done but unverified: %s", comp.Jobs[i].Spec.Name, id, st.Detail))
			continue
		}
		// Fold per-job reference checksums in submission order — the
		// deterministic identity of the whole multi-job scenario.
		fmt.Fprintf(h, "%s=%s;", comp.Jobs[i].Spec.Name, st.Checksum)
	}
	if allVerified {
		cell.Verified = true
		cell.Checksum = fmt.Sprintf("%016x", h.Sum64())
	}
	return nil
}
