package naspipe_test

import (
	"testing"

	"naspipe"
)

func TestFacadeSpaces(t *testing.T) {
	if len(naspipe.Spaces()) != 7 {
		t.Fatal("expected 7 Table-1 spaces")
	}
	sp, err := naspipe.SpaceByName("NLP.c1")
	if err != nil || sp.Blocks != 48 || sp.Choices != 72 {
		t.Fatalf("SpaceByName: %v %+v", err, sp)
	}
}

func TestFacadeRunPolicy(t *testing.T) {
	res, err := naspipe.RunPolicy(naspipe.Config{
		Space: naspipe.CVc3, Spec: naspipe.DefaultCluster(4), Seed: 1, NumSubnets: 12,
	}, "naspipe")
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Deadlock || res.Completed != 12 {
		t.Fatalf("run broken: %+v", res)
	}
	if _, err := naspipe.RunPolicy(naspipe.Config{}, "bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestFacadeEndToEndReproducibility(t *testing.T) {
	// A compressed version of the paper's core claim, through the public
	// API only: train on 1 and 4 GPUs; weights must be bitwise equal.
	sp := naspipe.NLPc3.Scaled(6, 3)
	cfg := naspipe.TrainConfig{Space: sp, Dim: 8, Seed: 5, BatchSize: 2, LR: 0.05}
	subs := naspipe.SampleSubnets(sp, 5, 16)
	var sums []uint64
	for _, d := range []int{1, 4} {
		res, err := naspipe.RunPolicy(naspipe.Config{
			Space: sp, Spec: naspipe.DefaultCluster(d), Seed: 5, NumSubnets: 16, RecordTrace: true,
		}, "naspipe")
		if err != nil {
			t.Fatal(err)
		}
		num, err := naspipe.TrainReplay(cfg, subs, res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, num.Checksum)
	}
	if sums[0] != sums[1] {
		t.Fatalf("weights differ across GPU counts: %x vs %x", sums[0], sums[1])
	}
	if seq := naspipe.TrainSequential(cfg, subs); seq.Checksum != sums[0] {
		t.Fatal("CSP result differs from sequential reference")
	}
}

func TestFacadeSearch(t *testing.T) {
	sp := naspipe.CVc3.Scaled(5, 2)
	cfg := naspipe.TrainConfig{Space: sp, Dim: 8, Seed: 2, BatchSize: 2, LR: 0.05, Dataset: 1}
	res := naspipe.TrainSequential(cfg, naspipe.SampleSubnets(sp, 2, 40))
	sc := naspipe.DefaultSearch(3)
	sc.Generations = 8
	sr, err := naspipe.Search(cfg, res.Net, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.Score <= 0 {
		t.Fatal("search returned degenerate score")
	}
	if naspipe.Score(sp, sr.Best.Loss) != sr.Best.Score {
		t.Fatal("Score disagrees with search's own scoring")
	}
}

func TestFacadeExperimentDispatch(t *testing.T) {
	out, err := naspipe.Experiment("table1", naspipe.QuickExperimentOptions())
	if err != nil || out == "" {
		t.Fatalf("experiment dispatch: %v", err)
	}
	if len(naspipe.ExperimentNames()) != 17 {
		t.Fatalf("expected 17 experiments, got %v", naspipe.ExperimentNames())
	}
	if len(naspipe.PolicyNames()) != 8 {
		t.Fatalf("expected 8 policies, got %v", naspipe.PolicyNames())
	}
}
