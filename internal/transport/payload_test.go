package transport

import (
	"errors"
	"reflect"
	"testing"

	"naspipe/internal/csp"
	"naspipe/internal/fault"
	"naspipe/internal/trace"
)

func TestPayloadRoundTrips(t *testing.T) {
	checkLeaks(t)
	hello := Hello{RunID: "run-77", Stage: 3, Incarnation: 2}
	if got, err := DecodeHello(hello.Encode()); err != nil || got != hello {
		t.Errorf("Hello round trip = (%+v, %v)", got, err)
	}
	assign := Assign{Stage: 1, D: 4, Cursor: 24, Incarnation: 2, Spec: []byte(`{"gpus":4}`)}
	if got, err := DecodeAssign(assign.Encode()); err != nil || !reflect.DeepEqual(got, assign) {
		t.Errorf("Assign round trip = (%+v, %v)", got, err)
	}
	task := Task{Seq: 9, Carried: []csp.PendingBackward{{Seq: 4, Precedence: 9}, {Seq: 6, Precedence: 9}}}
	if got, err := DecodeTask(task.Encode()); err != nil || !reflect.DeepEqual(got, task) {
		t.Errorf("Task round trip = (%+v, %v)", got, err)
	}
	note := Note{Seq: 5, Finished: true, IDs: layerIDs(3)}
	if got, err := DecodeNote(note.Encode()); err != nil || !reflect.DeepEqual(got, note) {
		t.Errorf("Note round trip = (%+v, %v)", got, err)
	}
	cut := fault.Cut{Cursor: 17, Finished: []int{1, 4, 9}}
	if got, err := DecodeCut(EncodeCut(cut)); err != nil || !reflect.DeepEqual(got, cut) {
		t.Errorf("Cut round trip = (%+v, %v)", got, err)
	}
	hb := Heartbeat{Stage: 2, Frontier: 31, Tasks: 62}
	if got, err := DecodeHeartbeat(hb.Encode()); err != nil || got != hb {
		t.Errorf("Heartbeat round trip = (%+v, %v)", got, err)
	}
	done := Done{Stage: 1, Completed: 64, Trace: []trace.Event{
		{Order: 0, TimeMs: 1.5, Layer: 7, Subnet: 0, Stage: 1, Kind: trace.Read},
		{Order: 3, TimeMs: 2.25, Layer: 9, Subnet: 1, Stage: 1, Kind: trace.Write},
	}}
	if got, err := DecodeDone(done.Encode()); err != nil || !reflect.DeepEqual(got, done) {
		t.Errorf("Done round trip = (%+v, %v)", got, err)
	}
	failed := Failed{Stage: 2, Seq: 11, Incarnation: 1, Kind: "crash", Msg: "injected"}
	if got, err := DecodeFailed(failed.Encode()); err != nil || got != failed {
		t.Errorf("Failed round trip = (%+v, %v)", got, err)
	}
	abort := Abort{Reason: "fleet restart"}
	if got, err := DecodeAbort(abort.Encode()); err != nil || got != abort {
		t.Errorf("Abort round trip = (%+v, %v)", got, err)
	}
}

func TestPayloadDecodeRejectsCorruption(t *testing.T) {
	checkLeaks(t)
	full := Done{Stage: 1, Completed: 2, Trace: []trace.Event{{Order: 1, Layer: 3}}}.Encode()
	structured := func(err error) bool {
		var de *DecodeError
		return errors.As(err, &de)
	}
	// Every truncation of every payload fails with a structured error.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeDone(full[:cut]); !structured(err) {
			t.Fatalf("DecodeDone(%d-byte prefix) error = %v, want *DecodeError", cut, err)
		}
	}
	// Trailing garbage is corruption, not slack.
	if _, err := DecodeHeartbeat(append(Heartbeat{Stage: 1}.Encode(), 0xAB)); !structured(err) {
		t.Errorf("trailing byte accepted: %v", err)
	}
	// A hostile repeat count cannot drive a giant allocation.
	huge := appendI64(appendInt(nil, 1), 1<<40) // Task{Seq: 1} claiming 2^40 carried releases
	if _, err := DecodeTask(huge); !structured(err) {
		t.Errorf("hostile repeat count accepted: %v", err)
	}
}
