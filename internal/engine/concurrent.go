// The concurrent execution plane: a goroutine-per-stage CSP executor.
//
// Where the simulator (engine.go) models the paper's runtime on a
// discrete-event clock, RunConcurrent *is* the runtime, at Go scale: every
// pipeline stage runs in its own goroutine, activations flow downstream
// and gradients upstream over channels, and each stage admits forward
// tasks by consulting its own csp.Scheduler — the paper's decentralized
// synchronization (§3.3), with no global clock and no central scheduler.
// Dependency releases propagate as write/finish notifications, exactly the
// role the mirroring push plays in §4.2.
//
// Determinism under real parallelism is the point. The raw interleaving of
// parameter accesses across stages is wall-clock-nondeterministic — it
// changes with GOMAXPROCS, scheduling noise, and injected timing jitter.
// CSP's guarantee (Definition 1) is that the *per-layer projection* of
// that interleaving — the only thing the training result depends on — is
// always the sequential order. RunConcurrent therefore returns two traces:
// Result.ObservedTrace, the raw emission order, and Result.Trace, the
// canonical causal order (each subnet's READs in stage order, then its
// WRITEs in backward stage order — byte-for-byte what a sequential run
// emits). After a complete run it verifies that the observed per-layer
// order equals the canonical one and fails loudly otherwise, making every
// call a mechanical check of Definition 1 on a genuinely parallel
// execution.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"naspipe/internal/csp"
	"naspipe/internal/metrics"
	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/task"
	"naspipe/internal/trace"
)

// ccNote is a cross-stage dependency-release notification: subnet seq's
// WRITE of ids has flushed on some stage; finished additionally marks the
// subnet's backward as having reached stage 0 (whole-subnet retirement,
// which advances the elimination frontier).
type ccNote struct {
	seq      int
	ids      []supernet.LayerID
	finished bool
}

// ccStage is one stage goroutine's private state. Only the owning
// goroutine touches any field after the run starts; all cross-stage
// communication goes through the channels.
type ccStage struct {
	k     int
	sched *csp.Scheduler

	fwdIn chan int    // activation arrivals from stage k-1 (nil at stage 0)
	bwdIn chan int    // gradient arrivals from stage k+1 (nil at stage D-1)
	notes chan ccNote // write/finish notifications from other stages

	fwdQ     []int // L_q: subnets whose forward input has arrived
	bwdReady []int // subnets whose backward input has arrived
	fwdDone  int
	bwdDone  int

	retrieved int // stage 0 only: subnets pulled from the exploration stream

	cont metrics.StageContention
}

// ccRun is the shared, read-only-after-start context of one concurrent
// run, plus the mutex-guarded trace collector.
type ccRun struct {
	cfg    Config
	w      *World
	stages []*ccStage

	mu  sync.Mutex
	obs *trace.Trace // raw interleaving; nil unless RecordTrace
}

// ccParkPoll bounds how long a stage goroutine parks before rescanning its
// queues — insurance against protocol bugs turning into silent hangs (the
// notification protocol never drops wakeups, so in a correct run this
// timer only fires around cancellation races).
const ccParkPoll = 5 * time.Millisecond

// RunConcurrent executes the configuration on the concurrent CSP
// execution plane. It is inherently a NASPipe (CSP) run: admission is
// Algorithm 2 on a per-stage scheduler, backward tasks carry priority, and
// subnets use balanced per-subnet partitions as in the full system.
//
// The returned Result carries scheduling/trace fields only: Completed,
// TotalMs (wall clock), Trace (canonical causal order), ObservedTrace,
// and per-stage Contention counters. Memory-model fields (Batch, GPUMem*,
// CacheHitRate, ...) stay zero — the memory plane is the simulator's job.
//
// Cancellation: stage goroutines check ctx between tasks; on cancellation
// the partial Result (Deadlock set, Completed < N) returns with ctx.Err().
func RunConcurrent(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, fmt.Errorf("engine: invalid cluster spec: %w", err)
	}
	w, err := NewWorld(cfg, PartitionBalanced)
	if err != nil {
		return Result{}, err
	}
	c := &ccRun{cfg: cfg, w: w}
	if cfg.RecordTrace {
		c.obs = &trace.Trace{}
	}
	n := len(w.Subnets)
	c.stages = make([]*ccStage, w.D)
	for k := 0; k < w.D; k++ {
		s := &ccStage{
			k:     k,
			sched: csp.New(k),
			notes: make(chan ccNote, (w.D+1)*n),
			cont:  metrics.StageContention{Stage: k},
		}
		if k > 0 {
			s.fwdIn = make(chan int, n)
		}
		if k < w.D-1 {
			s.bwdIn = make(chan int, n)
		}
		for i := range w.Subnets {
			if err := s.sched.AddSubnet(csp.SubnetInfo{
				Seq:         i,
				AllLayers:   w.AllLayerIDs(i),
				StageLayers: w.StageLayerIDs(i, k),
			}); err != nil {
				return Result{}, fmt.Errorf("engine: concurrent scheduler init: %w", err)
			}
		}
		c.stages[k] = s
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range c.stages {
		wg.Add(1)
		go func(s *ccStage) {
			defer wg.Done()
			c.stageLoop(ctx, s)
		}(s)
	}
	wg.Wait() // establishes happens-before: stage state is safe to read below

	res := Result{
		Policy: "NASPipe-CC", Space: cfg.Space.Name, D: w.D,
		SupernetBytes: w.Net.TotalParamBytes(),
	}
	res.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
	res.Completed = c.stages[0].bwdDone
	res.Deadlock = res.Completed < n
	res.Contention = make([]metrics.StageContention, w.D)
	for k, s := range c.stages {
		_, empty := s.sched.Stats()
		s.cont.BlockedScans = int64(empty)
		res.Contention[k] = s.cont
	}
	if res.TotalMs > 0 {
		res.SubnetsPerHour = float64(res.Completed) / (res.TotalMs / 3.6e6)
	}
	if c.obs != nil {
		res.ObservedTrace = c.obs
		res.Trace = CanonicalTrace(w)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if res.Deadlock {
		return res, fmt.Errorf("engine: concurrent run stalled at %d/%d subnets", res.Completed, n)
	}
	if c.obs != nil {
		if !c.obs.PerLayerEqual(res.Trace) {
			return res, fmt.Errorf("engine: concurrent execution violated CSP: observed per-layer access order diverges from the sequential reference")
		}
	}
	return res, nil
}

// stageLoop is the body of one stage goroutine: drain inputs, run the
// highest-priority admissible task, park when nothing is runnable.
func (c *ccRun) stageLoop(ctx context.Context, s *ccStage) {
	n := len(c.w.Subnets)
	for s.fwdDone < n || s.bwdDone < n {
		if ctx.Err() != nil {
			return
		}
		s.drain()
		if s.k == 0 {
			s.refill(c.cfg.InflightLimit, n)
		}
		// Backward tasks always run first (§3.2): they retire dependencies
		// and widen every stage's schedulable set.
		if c.runBackward(s) {
			continue
		}
		if c.runForward(s) {
			continue
		}
		// Nothing admissible: park until an input or notification arrives.
		s.cont.Parks++
		timer := time.NewTimer(ccParkPoll)
		select {
		case note := <-s.notes:
			s.apply(note)
		case seq := <-s.fwdIn:
			s.fwdQ = append(s.fwdQ, seq)
		case seq := <-s.bwdIn:
			s.bwdReady = append(s.bwdReady, seq)
		case <-ctx.Done():
		case <-timer.C:
		}
		timer.Stop()
	}
}

// drain non-blockingly absorbs every pending notification and arrival.
func (s *ccStage) drain() {
	for {
		select {
		case note := <-s.notes:
			s.apply(note)
			continue
		default:
		}
		if s.fwdIn != nil {
			select {
			case seq := <-s.fwdIn:
				s.fwdQ = append(s.fwdQ, seq)
				continue
			default:
			}
		}
		if s.bwdIn != nil {
			select {
			case seq := <-s.bwdIn:
				s.bwdReady = append(s.bwdReady, seq)
				continue
			default:
			}
		}
		return
	}
}

// apply folds a cross-stage notification into the local scheduler.
func (s *ccStage) apply(n ccNote) {
	s.cont.Notes++
	s.sched.MarkWritten(n.seq, n.ids)
	if n.finished {
		s.sched.MarkFinished(n.seq)
	}
}

// refill keeps stage 0's forward queue stocked from the exploration
// stream, bounded by the inflight window (retrieve() of Algorithm 1).
func (s *ccStage) refill(inflightLimit, n int) {
	for s.retrieved < n && s.retrieved-s.bwdDone < inflightLimit {
		s.fwdQ = append(s.fwdQ, s.retrieved)
		s.retrieved++
	}
}

// runBackward executes the lowest-sequence ready backward, emits its
// WRITEs, and broadcasts the dependency release. Returns false if no
// backward is ready.
func (c *ccRun) runBackward(s *ccStage) bool {
	if len(s.bwdReady) == 0 {
		return false
	}
	best := 0
	for i := 1; i < len(s.bwdReady); i++ {
		if s.bwdReady[i] < s.bwdReady[best] {
			best = i
		}
	}
	seq := s.bwdReady[best]
	s.bwdReady = append(s.bwdReady[:best], s.bwdReady[best+1:]...)
	ids := c.w.stageIDs[seq][s.k]

	c.compute(seq, s.k, task.Backward)
	// The WRITE must be visible in the trace before any dependent learns
	// of the release: append first, notify after. The channel send/receive
	// pair then carries the happens-before edge to every dependent READ.
	c.emit(ids, seq, s.k, trace.Write)
	finished := s.k == 0
	s.apply(ccNote{seq: seq, ids: ids, finished: finished})
	s.cont.Notes-- // self-application is not cross-stage traffic
	for _, t := range c.stages {
		if t != s {
			t.notes <- ccNote{seq: seq, ids: ids, finished: finished}
		}
	}
	if s.k > 0 {
		c.stages[s.k-1].bwdIn <- seq
	}
	s.bwdDone++
	s.cont.Tasks++
	return true
}

// runForward admits the first CSP-admissible queued forward (Algorithm 2),
// emits its READs, and forwards the activation downstream. Returns false
// if the queue is empty or every queued subnet is blocked.
func (c *ccRun) runForward(s *ccStage) bool {
	if len(s.fwdQ) == 0 {
		return false
	}
	qidx, seq := s.sched.Schedule(s.fwdQ)
	if qidx < 0 {
		return false
	}
	s.fwdQ = append(s.fwdQ[:qidx], s.fwdQ[qidx+1:]...)
	ids := c.w.stageIDs[seq][s.k]
	// The READ happens at admission — after the CSP check, before compute —
	// mirroring the simulator's context-acquire semantics.
	c.emit(ids, seq, s.k, trace.Read)
	c.compute(seq, s.k, task.Forward)
	if s.k < c.w.D-1 {
		c.stages[s.k+1].fwdIn <- seq
	} else {
		// Loss computed: the backward is immediately ready locally.
		s.bwdReady = append(s.bwdReady, seq)
	}
	s.fwdDone++
	s.cont.Tasks++
	return true
}

// compute stands in for the stage's kernel work. With TimingJitter set it
// sleeps a deterministic pseudo-random duration (up to ~50µs scaled by the
// jitter magnitude) keyed by (JitterSeed, task) — real wall-clock
// perturbation, modeling foreign hardware exactly as the simulator's
// jitter does. Without jitter it still yields to the Go scheduler so
// stage interleavings stay adversarial rather than lockstep.
func (c *ccRun) compute(seq, stage int, kind task.Kind) {
	if c.cfg.TimingJitter > 0 {
		r := rng.Labeled(c.cfg.JitterSeed, fmt.Sprintf("ccjitter/%d/%d/%d", seq, stage, int(kind)))
		d := time.Duration(c.cfg.TimingJitter * r.Float64() * float64(50*time.Microsecond))
		if d > 0 {
			time.Sleep(d)
		}
		return
	}
	runtime.Gosched()
}

// emit appends one access per layer to the observed trace, in stage-index
// order, under the collector lock.
func (c *ccRun) emit(ids []supernet.LayerID, seq, stage int, kind trace.AccessKind) {
	if c.obs == nil {
		return
	}
	c.mu.Lock()
	for _, id := range ids {
		c.obs.Append(0, id, seq, stage, kind)
	}
	c.mu.Unlock()
}

// CanonicalTrace builds the causal (sequential-reference) parameter-access
// order for a world: for each subnet in sequence order, its READs stage by
// stage downstream, then its WRITEs stage by stage back upstream — exactly
// the emission order of a sequential run, and the deterministic
// normalization of every CSP-compliant interleaving. The replay trainer
// consumes it directly.
func CanonicalTrace(w *World) *trace.Trace {
	tr := &trace.Trace{}
	for seq := range w.Subnets {
		for k := 0; k < w.D; k++ {
			for _, id := range w.stageIDs[seq][k] {
				tr.Append(0, id, seq, k, trace.Read)
			}
		}
		for k := w.D - 1; k >= 0; k-- {
			for _, id := range w.stageIDs[seq][k] {
				tr.Append(0, id, seq, k, trace.Write)
			}
		}
	}
	return tr
}
