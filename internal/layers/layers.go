// Package layers defines the candidate-layer library of NASPipe-Go.
//
// A supernet choice block holds many candidate layers; NASPipe cares about
// three things per layer: how long its forward and backward passes take on
// a GPU, how long its parameters take to swap between CPU and GPU memory
// over PCIe, and how to actually run it numerically. The paper's Table 5
// profiles eight representative layer kinds (four NLP kinds at input size
// (192, 1024) and four CV kinds at (64, 112, 112)); those measured numbers
// are this package's cost model, which makes the discrete-event simulator's
// timing directly traceable to the paper's testbed.
//
// The numeric implementation is deliberately uniform: every layer computes
// y = tanh(Wx + b) on a small dense matrix. Reproducibility (the property
// under study) depends on the read/write interleaving of parameters, not on
// the kernel being a convolution versus an attention block, so a single
// auditable kernel keeps the numeric plane small while the cost metadata
// keeps the performance plane faithful.
package layers

import (
	"fmt"

	"naspipe/internal/rng"
	"naspipe/internal/tensor"
)

// Kind identifies one of the eight representative layer kinds from the
// paper's Table 5.
type Kind int

// The eight Table 5 layer kinds. NLP kinds profile at input size
// (192, 1024); CV kinds at (64, 112, 112).
const (
	Conv3x1 Kind = iota // NLP: 3x1 convolution
	SepConv7x1
	LightConv5x1
	Attention8Head
	Conv3x3 // CV: 3x3 convolution
	SepConv3x3
	SepConv5x5
	DilConv3x3
	numKinds
)

// Domain is the task family a layer kind belongs to.
type Domain int

// Domains.
const (
	NLP Domain = iota
	CV
)

func (d Domain) String() string {
	if d == NLP {
		return "NLP"
	}
	return "CV"
}

var kindNames = [numKinds]string{
	"Conv 3x1", "Sep Conv 7x1", "Light Conv 5x1", "8 Head Attention",
	"Conv 3x3", "Sep Conv 3x3", "Sep Conv 5x5", "Dil Conv 3x3",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Domain returns the task family of the kind.
func (k Kind) Domain() Domain {
	if k <= Attention8Head {
		return NLP
	}
	return CV
}

// PCIeBytesPerMs is the testbed's PCIe 3.0 x16 bandwidth (15760 MB/s)
// expressed in bytes per millisecond. Swap times in Table 5 divided into
// parameter sizes use this constant, so cost profiles and the cluster model
// agree by construction.
const PCIeBytesPerMs = 15760 * 1000 * 1000 / 1000 // 15,760,000 B/ms

// CostProfile carries the per-layer costs the schedulers and the simulator
// reason about. Times are in milliseconds at the profiled input size and a
// reference batch; the engine scales them by batch size.
type CostProfile struct {
	FwdMs      float64 // forward pass compute time
	BwdMs      float64 // backward pass compute time (includes optimizer step)
	SwapMs     float64 // CPU<->GPU parameter copy time over PCIe 3.0 x16
	ParamBytes int64   // parameter size; SwapMs * PCIe bandwidth
}

// profiles holds the measured Table 5 numbers.
var profiles = [numKinds]CostProfile{
	Conv3x1:        {FwdMs: 5.0, BwdMs: 10.0, SwapMs: 1.76},
	SepConv7x1:     {FwdMs: 4.2, BwdMs: 5.7, SwapMs: 0.56},
	LightConv5x1:   {FwdMs: 0.68, BwdMs: 1.4, SwapMs: 0.03},
	Attention8Head: {FwdMs: 7.9, BwdMs: 13.8, SwapMs: 2.07},
	Conv3x3:        {FwdMs: 7.9, BwdMs: 13.8, SwapMs: 4.6},
	SepConv3x3:     {FwdMs: 2.8, BwdMs: 4.0, SwapMs: 0.68},
	SepConv5x5:     {FwdMs: 6.7, BwdMs: 9.9, SwapMs: 2.04},
	DilConv3x3:     {FwdMs: 2.5, BwdMs: 3.4, SwapMs: 0.58},
}

func init() {
	for k := range profiles {
		profiles[k].ParamBytes = int64(profiles[k].SwapMs * PCIeBytesPerMs)
	}
}

// Profile returns the measured cost profile for the kind.
func Profile(k Kind) CostProfile {
	if k < 0 || k >= numKinds {
		panic(fmt.Sprintf("layers: unknown kind %d", int(k)))
	}
	return profiles[k]
}

// Kinds returns all kinds for the domain, in Table 5 order.
func Kinds(d Domain) []Kind {
	if d == NLP {
		return []Kind{Conv3x1, SepConv7x1, LightConv5x1, Attention8Head}
	}
	return []Kind{Conv3x3, SepConv3x3, SepConv5x5, DilConv3x3}
}

// InputSize returns the profiled input shape label for the domain, for
// reporting Table 5.
func InputSize(d Domain) string {
	if d == NLP {
		return "(192, 1024)"
	}
	return "(64, 112, 112)"
}

// Layer is a numeric candidate layer: y = tanh(W·x + b). W is Dim×Dim.
// The layer owns its parameters; callers coordinate concurrent access (in
// NASPipe, the scheduler guarantees exclusive access per the CSP
// discipline, which is the entire point).
type Layer struct {
	Kind Kind
	Dim  int
	W    *tensor.Matrix
	B    tensor.Vector
}

// NewLayer returns a layer with deterministically initialized parameters.
// Initialization is scaled Gaussian (std 1/√Dim), drawn from a stream
// derived from the caller-provided stream, which in turn must be derived
// from the global seed and the layer's identity — never from the GPU count.
func NewLayer(kind Kind, dim int, r *rng.Stream) *Layer {
	l := &Layer{Kind: kind, Dim: dim, W: tensor.NewMatrix(dim, dim), B: make(tensor.Vector, dim)}
	scale := 1.0 / float32(isqrt(dim))
	for i := range l.W.Data {
		l.W.Data[i] = r.NormFloat32() * scale
	}
	for i := range l.B {
		l.B[i] = 0
	}
	return l
}

// isqrt returns a float-free deterministic approximation context: we just
// need √dim for init scaling; use integer sqrt via Newton on int then
// refine as float32. Dim is tiny so precision is irrelevant — determinism
// is what matters.
func isqrt(n int) float32 {
	x := float64(n)
	// Three Newton steps from a crude seed; fully deterministic arithmetic.
	g := x / 2
	if g == 0 {
		return 1
	}
	for i := 0; i < 12; i++ {
		g = (g + x/g) / 2
	}
	return float32(g)
}

// Forward computes y = tanh(W·x + b) and returns y. x is not modified.
func (l *Layer) Forward(x tensor.Vector) tensor.Vector {
	y := make(tensor.Vector, l.Dim)
	l.ForwardInto(y, x)
	return y
}

// ForwardInto computes dst = tanh(W·x + b) using a caller-provided output
// buffer — the allocation-free variant the training arena uses. dst must
// not alias x.
func (l *Layer) ForwardInto(dst, x tensor.Vector) {
	tensor.MatVec(dst, l.W, x)
	tensor.AXPY(dst, 1, l.B)
	tensor.Tanh(dst, dst)
}

// Grads holds the parameter gradients of one layer for one batch item.
type Grads struct {
	W *tensor.Matrix
	B tensor.Vector
}

// NewGrads allocates zeroed gradients matching the layer's shape.
func (l *Layer) NewGrads() *Grads {
	return &Grads{W: tensor.NewMatrix(l.Dim, l.Dim), B: make(tensor.Vector, l.Dim)}
}

// Reset zeroes the gradients in place so a pooled Grads can be reused.
func (g *Grads) Reset() {
	g.W.Zero()
	for i := range g.B {
		g.B[i] = 0
	}
}

// Backward computes the input gradient dx and accumulates parameter
// gradients into g, given the forward input x, the saved activation y
// (the forward output), and the output gradient dy.
func (l *Layer) Backward(x, y, dy tensor.Vector, g *Grads) tensor.Vector {
	dz := make(tensor.Vector, l.Dim)
	dx := make(tensor.Vector, l.Dim)
	l.BackwardInto(dx, dz, x, y, dy, g)
	return dx
}

// BackwardInto is Backward with caller-provided buffers: dx receives the
// input gradient and dz is pre-activation scratch. dx may alias dy (dy is
// fully consumed before dx is written), but dx and dz must be distinct.
func (l *Layer) BackwardInto(dx, dz, x, y, dy tensor.Vector, g *Grads) {
	// Pre-activation gradient: dz = dy ⊙ (1 - y²).
	tensor.TanhGrad(dz, dy, y)
	// dW += dz ⊗ x; db += dz; dx = Wᵀ dz.
	tensor.OuterAccum(g.W, dz, x, 1)
	tensor.AXPY(g.B, 1, dz)
	tensor.MatTVec(dx, l.W, dz)
}

// ApplySGD performs the optimizer step W -= lr·gW, b -= lr·gB. This is the
// WRITE access in the paper's causal-dependency model: a later subnet that
// shares this layer must not read W until this call completes.
func (l *Layer) ApplySGD(g *Grads, lr float32) {
	tensor.MatAXPY(l.W, -lr, g.W)
	tensor.AXPY(l.B, -lr, g.B)
}

// Checksum returns a bitwise digest of the layer's parameters.
func (l *Layer) Checksum() uint64 {
	return tensor.CombineChecksums([]uint64{l.W.Checksum(), l.B.Checksum()})
}

// Clone returns a deep copy of the layer (used to snapshot parameter
// versions when replaying non-CSP access orders).
func (l *Layer) Clone() *Layer {
	return &Layer{Kind: l.Kind, Dim: l.Dim, W: l.W.Clone(), B: l.B.Clone()}
}
