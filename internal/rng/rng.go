// Package rng provides deterministic, splittable pseudo-random number
// generation for NASPipe.
//
// Every random decision in the system — subnet sampling, weight
// initialization, synthetic data generation, evolutionary mutation — draws
// from a Stream derived from a single global seed plus a purpose label.
// Streams for different purposes are statistically independent, and the
// derivation never involves the GPU count or the scheduling policy, so the
// same (seed, workload) pair produces the same sample sequence no matter how
// the training run is parallelized. This is the foundation of the paper's
// Definition 1 (reproducibility): repeated runs with the same dataset and
// seeds must be bitwise equivalent even on a different cluster.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference construction by Blackman and Vigna. Both are public-domain
// algorithms with well-studied statistical behaviour and are trivially
// portable: no platform-dependent state, no global locks.
package rng

import (
	"hash/fnv"
	"math"
)

// splitmix64 advances the given state and returns the next 64-bit output.
// It is used only to expand seeds into full generator state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random number generator
// (xoshiro256**). The zero value is not valid; construct Streams with New,
// Labeled, or Split.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// New returns a Stream seeded from the given 64-bit seed. Equal seeds yield
// identical streams.
func New(seed uint64) *Stream {
	st := seed
	r := &Stream{}
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
	// xoshiro256** requires a nonzero state; splitmix64 of any seed yields
	// all-zero state with probability ~2^-256, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	return r
}

// Labeled returns a Stream for the given purpose label under the given
// seed. Distinct labels give independent streams; the mapping is stable
// across runs and platforms.
func Labeled(seed uint64, label string) *Stream {
	h := fnv.New64a()
	// The hash of the label perturbs the seed; writing the seed bytes first
	// keeps (seed, label) pairs distinct even when labels collide across
	// seeds.
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits from the stream.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child stream identified by label. The parent
// stream is not advanced, so the set of children is a pure function of the
// parent's current state and the labels used.
func (r *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	var buf [32]byte
	words := [4]uint64{r.s0, r.s1, r.s2, r.s3}
	for w, v := range words {
		for i := 0; i < 8; i++ {
			buf[w*8+i] = byte(v >> (8 * i))
		}
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float32 returns a uniform float32 in [0, 1). Only the top 24 bits of the
// generator output are used, so every representable value is exact and the
// mapping is platform-independent.
func (r *Stream) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat32 returns a standard normal variate computed with the
// Box-Muller transform. Box-Muller is chosen over ziggurat because its
// output is a simple composition of deterministic math functions: identical
// on every platform that implements IEEE-754, which runtime ziggurat tables
// also are, but Box-Muller keeps the implementation small and auditable.
func (r *Stream) NormFloat32() float32 {
	// Draw until u1 is nonzero so the log is finite.
	var u1 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return float32(z)
}

// Perm returns a deterministic pseudo-random permutation of [0, n) using
// Fisher-Yates.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates order.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
