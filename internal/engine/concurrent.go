// The concurrent execution plane: a goroutine-per-stage CSP executor.
//
// Where the simulator (engine.go) models the paper's runtime on a
// discrete-event clock, RunConcurrent *is* the runtime, at Go scale: every
// pipeline stage runs in its own goroutine, activations flow downstream
// and gradients upstream over channels, and each stage admits forward
// tasks by consulting its own csp.Scheduler — the paper's decentralized
// synchronization (§3.3), with no global clock and no central scheduler.
// Dependency releases propagate as write/finish notifications, exactly the
// role the mirroring push plays in §4.2.
//
// With Config.ConcurrentMem enabled, each stage additionally owns a
// thread-safe prefetching layer cache (internal/prefetch) and an async
// prefetcher goroutine. Prefetch requests come from three sources, the
// same three the simulator models: arrival of a task's input message,
// cross-stage notification at a neighbour's admission (§3.3 context
// push), and the Algorithm 3 predictor (csp.Predictor), including
// pending-backward records carried upstream with gradient transfers
// (Algorithm 3 lines 10–11). Each forward/backward brackets its compute
// with Acquire/Release on the cache, counting the paper's hit/miss/
// stall/drop micro events. Prefetching moves data only — admission
// decisions never consult the cache — so the causal schedule, and with it
// the Definition 1 guarantee below, is invariant under any cache
// configuration; every traced run still verifies it mechanically.
//
// Determinism under real parallelism is the point. The raw interleaving of
// parameter accesses across stages is wall-clock-nondeterministic — it
// changes with GOMAXPROCS, scheduling noise, and injected timing jitter.
// CSP's guarantee (Definition 1) is that the *per-layer projection* of
// that interleaving — the only thing the training result depends on — is
// always the sequential order. RunConcurrent therefore returns two traces:
// Result.ObservedTrace, the raw emission order, and Result.Trace, the
// canonical causal order (each subnet's READs in stage order, then its
// WRITEs in backward stage order — byte-for-byte what a sequential run
// emits). After a complete run it verifies that the observed per-layer
// order equals the canonical one and fails loudly otherwise, making every
// call a mechanical check of Definition 1 on a genuinely parallel
// execution.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"naspipe/internal/csp"
	"naspipe/internal/fault"
	"naspipe/internal/metrics"
	"naspipe/internal/prefetch"
	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/task"
	"naspipe/internal/telemetry"
	"naspipe/internal/trace"
)

// ccNote is a cross-stage dependency-release notification: subnet seq's
// WRITE of ids has flushed on some stage; finished additionally marks the
// subnet's backward as having reached stage 0 (whole-subnet retirement,
// which advances the elimination frontier).
type ccNote struct {
	seq      int
	ids      []supernet.LayerID
	finished bool
}

// ccBwd is a gradient transfer from stage k+1 to stage k: the backward's
// subnet plus any pending-backward records the sending stage announces
// upstream (Algorithm 3 lines 10–11).
type ccBwd struct {
	seq     int
	carried []csp.PendingBackward
}

// ccStage is one stage goroutine's private state. Only the owning
// goroutine touches the scheduling fields after the run starts; the
// cache is thread-safe and shared with the stage's prefetcher goroutine
// and with neighbouring stages; all other cross-stage communication goes
// through the channels.
type ccStage struct {
	k    int
	base int // global seq of local subnet 0 (Config.SeqBase)

	sched *csp.Scheduler

	fwdIn chan int    // activation arrivals from stage k-1 (nil at stage 0)
	bwdIn chan ccBwd  // gradient arrivals from stage k+1 (nil at stage D-1)
	notes chan ccNote // write/finish notifications from other stages

	// seenFwd/seenBwd dedup duplicated fault-plane deliveries (nil when
	// fault injection is off; with it on, the injector bounds deliveries
	// per message at two).
	seenFwd map[int]bool
	seenBwd map[int]bool

	// Memory-context plane (nil/empty when ConcurrentMem is disabled).
	cache     *prefetch.Cache
	fetchQ    chan int                      // subnet prefetch requests for this stage
	pred      *csp.Predictor                // Algorithm 3 (nil unless Predictor)
	carriedBy map[int][]csp.PendingBackward // pending records received per gradient
	announced map[int]bool                  // subnets already carried upstream

	fwdQ     []int // L_q: subnets whose forward input has arrived
	bwdReady []int // subnets whose backward input has arrived
	fwdDone  int
	bwdDone  int

	retrieved int // stage 0 only: subnets pulled from the exploration stream

	lastTaskNs int64 // wall-clock ns of the last completed task (health probe)

	cont metrics.StageContention

	tel *telemetry.Bus // nil = telemetry disabled
	// telb batches this stage goroutine's own events (task lifecycle,
	// scheduler decisions, transfer endpoints), amortizing the bus lock to
	// one acquisition per flush. Single-producer by construction: only the
	// stage goroutine emits through it. Events that other goroutines may
	// emit on this stage's behalf (fault-plane prefetch failures, cache
	// traffic) go straight to tel. Flushed at parks, at wedge/crash/
	// cancel boundaries, and on loop exit — before anyone reads the bus.
	telb *telemetry.Batcher
	// lastDelaySeq/Writer dedup OpSchedDelay: a stage rescans its blocked
	// queue every loop iteration, but only a *change* of blocked head or
	// blocking writer is a new fact worth an event.
	lastDelaySeq    int
	lastDelayWriter int

	// statsBase snapshots the scheduler's cumulative pressure counters at
	// run start, so contention tables report this incarnation's pressure
	// even if a future caller hands in a reused scheduler.
	statsBaseCalls int
	statsBaseEmpty int
}

// telTask emits one task-scoped event at wall-clock now. seq is the
// stage-local sequence; the event carries the global one.
func (s *ccStage) telTask(op telemetry.Op, ph telemetry.Phase, seq int, kind int8) {
	if s.tel == nil {
		return
	}
	s.telb.Emit(telemetry.Event{
		Op: op, Phase: ph,
		Stage: int32(s.k), Worker: telemetry.WorkerStage,
		Subnet: int32(s.base + seq), Kind: kind,
	})
}

// telFlow emits one cross-stage transfer endpoint; from is the sending
// stage on both ends of the arrow.
func (s *ccStage) telFlow(op telemetry.Op, ph telemetry.Phase, seq int, kind int8, from int) {
	if s.tel == nil {
		return
	}
	s.telb.Emit(telemetry.Event{
		Op: op, Phase: ph,
		Stage: int32(s.k), Worker: telemetry.WorkerStage,
		Subnet: int32(s.base + seq), Kind: kind,
		Arg: telemetry.FlowID(kind, int32(s.base+seq), int32(from)),
	})
}

// telFault emits one fault-plane event; gseq is already global.
func (s *ccStage) telFault(op telemetry.Op, gseq int, kind int8, arg int64) {
	if s.tel == nil {
		return
	}
	s.tel.Emit(telemetry.Event{
		Op: op, Phase: telemetry.PhaseInstant,
		Stage: int32(s.k), Worker: telemetry.WorkerStage,
		Subnet: int32(gseq), Kind: kind, Arg: arg,
	})
}

// ccRun is the shared, read-only-after-start context of one concurrent
// run, plus the mutex-guarded trace collector.
type ccRun struct {
	cfg    Config
	w      *World
	stages []*ccStage // indexed by stage; nil for stages remote to this process
	base   int        // Config.SeqBase

	// Distributed plane (nil for a single-process run): dist routes all
	// cross-stage traffic through dist.Transport; a failed send poisons
	// the run via sendOnce/sendErr (see dist.go).
	dist     *DistConfig
	sendOnce sync.Once
	sendErr  error

	mu  sync.Mutex
	obs *trace.Trace // raw interleaving; nil unless RecordTrace

	// tel is Config.Telemetry, or a private bus when RecordTrace needs
	// Result.Spans without one; nil = telemetry disabled.
	tel *telemetry.Bus

	// Fault plane (nil/zero when Config.Faults is disabled).
	inj *fault.Injector
	// crashed aborts every stage goroutine once an injected crash (or a
	// checkpoint-recorder failure) fires; crashOnce/crashErr capture the
	// first crash, the one the run reports.
	crashed   atomic.Bool
	crashOnce sync.Once
	crashErr  *fault.CrashError

	// Checkpoint plane: rec receives consistency cuts as stage 0's
	// backward frontier advances. lastCut/recErr are touched only by the
	// stage-0 goroutine; RunConcurrent reads them after wg.Wait.
	rec     fault.Recorder
	lastCut int
	recErr  error

	// Health plane: probe is Config.Probe (nil = disabled); stages
	// publish their scheduler state into it at every task boundary.
	probe *RunProbe
}

// ccParkPoll bounds how long a stage goroutine parks before rescanning its
// queues — insurance against protocol bugs turning into silent hangs (the
// notification protocol never drops wakeups, so in a correct run this
// timer only fires around cancellation races).
const ccParkPoll = 5 * time.Millisecond

// RunConcurrent executes the configuration on the concurrent CSP
// execution plane. It is inherently a NASPipe (CSP) run: admission is
// Algorithm 2 on a per-stage scheduler, backward tasks carry priority, and
// subnets use balanced per-subnet partitions as in the full system.
//
// The returned Result carries scheduling/trace fields (Completed, TotalMs
// wall clock, Trace, ObservedTrace, per-stage Contention) and — when
// Config.ConcurrentMem enables the cache — the memory-context fields:
// per-stage CacheStats, aggregate CacheHitRate (or -1/N-A with no
// accesses), StallMs, DroppedPrefetches, CachedParamBytes (the summed
// cache budget), and CPUMemBytes (the pinned supernet stash). With the
// cache disabled the memory fields stay zero and CacheHitRate is -1, as
// in PR 1.
//
// Cancellation: stage goroutines check ctx between tasks; on cancellation
// the partial Result (Deadlock set, Completed < N) returns with ctx.Err().
func RunConcurrent(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, fmt.Errorf("engine: invalid cluster spec: %w", err)
	}
	mem := cfg.ConcurrentMem
	if mem.Predictor && !mem.Enabled() {
		return Result{}, fmt.Errorf("engine: the concurrent predictor requires a cache (ConcurrentMem.CacheFactor > 0)")
	}
	if mem.CacheFactor < 0 || mem.FetchMsScale < 0 {
		return Result{}, fmt.Errorf("engine: negative ConcurrentMem parameters: %+v", mem)
	}
	if cfg.SeqBase < 0 {
		return Result{}, fmt.Errorf("engine: negative SeqBase %d", cfg.SeqBase)
	}
	if err := cfg.validateTiming(); err != nil {
		return Result{}, err
	}
	w, err := NewWorld(cfg, PartitionBalanced)
	if err != nil {
		return Result{}, err
	}
	c := &ccRun{cfg: cfg, w: w, base: cfg.SeqBase, rec: cfg.Checkpoint, probe: cfg.Probe, dist: cfg.Dist}
	local := make([]bool, w.D)
	if c.dist != nil {
		if err := c.dist.validate(w.D); err != nil {
			return Result{}, err
		}
		local = c.dist.localSet(w.D)
	} else {
		for k := range local {
			local[k] = true
		}
	}
	if cfg.Faults.Enabled() {
		c.inj, err = fault.NewInjector(*cfg.Faults, cfg.FaultIncarnation)
		if err != nil {
			return Result{}, fmt.Errorf("engine: %w", err)
		}
	}
	if cfg.RecordTrace {
		c.obs = &trace.Trace{}
	}
	n := len(w.Subnets)
	tel := cfg.Telemetry
	if tel == nil && cfg.RecordTrace {
		// A traced run wants Result.Spans even without an external bus:
		// capture privately, sized for the full span/flow event volume.
		tel = telemetry.NewBus(32*n*w.D + 4096)
	}
	c.tel = tel
	// Under fault injection a message may be delivered twice (the
	// injector duplicates only on attempt 0), so the arrival buffers are
	// doubled: sends stay non-blocking even after a crash empties the
	// receiving side.
	arrivalCap := n
	if c.inj != nil {
		arrivalCap = 2 * n
	}
	c.stages = make([]*ccStage, w.D)
	for k := 0; k < w.D; k++ {
		if !local[k] {
			continue // the stage runs in another process, behind the transport
		}
		s := &ccStage{
			k:     k,
			base:  c.base,
			sched: csp.New(k),
			notes: make(chan ccNote, (w.D+1)*n),
			cont:  metrics.StageContention{Stage: k},
			tel:   tel,
			telb:  telemetry.NewBatcher(tel),
		}
		s.statsBaseCalls, s.statsBaseEmpty = s.sched.Stats()
		if c.inj != nil {
			s.seenFwd = make(map[int]bool, n)
			s.seenBwd = make(map[int]bool, n)
		}
		if k > 0 {
			s.fwdIn = make(chan int, arrivalCap)
		}
		if k < w.D-1 {
			s.bwdIn = make(chan ccBwd, arrivalCap)
		}
		for i := range w.Subnets {
			if err := s.sched.AddSubnet(csp.SubnetInfo{
				Seq:         i,
				AllLayers:   w.AllLayerIDs(i),
				StageLayers: w.StageLayerIDs(i, k),
			}); err != nil {
				return Result{}, fmt.Errorf("engine: concurrent scheduler init: %w", err)
			}
		}
		if mem.Enabled() {
			// Capacity follows the simulator's provisioning: CacheFactor ×
			// the stage's average subnet-partition footprint (the paper's 3
			// = executing + evicting + prefetched subnet).
			var sum int64
			for i := range w.Subnets {
				for _, id := range w.stageIDs[i][k] {
					sum += w.Net.Meta[id].ParamBytes
				}
			}
			capacity := int64(mem.CacheFactor * float64(sum) / float64(n))
			s.cache = prefetch.New(capacity, cfg.Spec.PCIeBytesPerMs, mem.FetchMsScale).WithTelemetry(tel, int32(k))
			s.fetchQ = make(chan int, 4*n+8)
			if mem.Predictor {
				s.pred = csp.NewPredictor(s.sched)
				s.carriedBy = make(map[int][]csp.PendingBackward)
				s.announced = make(map[int]bool)
			}
		}
		c.stages[k] = s
	}
	if c.probe != nil {
		c.probe.attach(w.D, c.base)
	}

	start := time.Now()
	// Pump goroutines (dist only): one per local stage, draining the
	// transport's delivery queues into the stage arrival channels.
	stopPumps := func() {}
	if c.dist != nil {
		stopPumps = c.startPumps()
	}
	// Async prefetcher goroutines: one per stage, alive for the whole run,
	// applying subnet prefetch requests to the stage cache concurrently
	// with that stage's compute.
	stopFetch := make(chan struct{})
	var fwg sync.WaitGroup
	for _, s := range c.stages {
		if s == nil || s.fetchQ == nil {
			continue
		}
		fwg.Add(1)
		go func(s *ccStage) {
			defer fwg.Done()
			c.prefetchLoop(s, stopFetch)
		}(s)
	}
	var wg sync.WaitGroup
	for _, s := range c.stages {
		if s == nil {
			continue
		}
		wg.Add(1)
		go func(s *ccStage) {
			defer wg.Done()
			c.stageLoop(ctx, s)
		}(s)
	}
	wg.Wait() // establishes happens-before: stage state is safe to read below
	stopPumps()
	close(stopFetch)
	fwg.Wait()

	res := Result{
		Policy: "NASPipe-CC", Space: cfg.Space.Name, D: w.D,
		SupernetBytes: w.Net.TotalParamBytes(),
		BaseSeq:       c.base,
	}
	res.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
	// Every subnet's backward passes through every stage, so any local
	// stage's backward counter measures completion; the minimum is the
	// conservative one for the deadlock verdict. A dist worker without
	// stage 0 still reports n here on a clean finish — the coordinator
	// takes the authoritative count from the stage-0 owner.
	res.Completed = n
	for _, s := range c.stages {
		if s != nil && s.bwdDone < res.Completed {
			res.Completed = s.bwdDone
		}
	}
	res.Deadlock = res.Completed < n
	res.Contention = make([]metrics.StageContention, w.D)
	for k, s := range c.stages {
		if s == nil {
			res.Contention[k] = metrics.StageContention{Stage: k}
			continue
		}
		// Snapshot-delta against the run-start baseline: a reused scheduler
		// must not leak a previous incarnation's pressure into this run's
		// contention table.
		_, empty := s.sched.Stats()
		s.cont.BlockedScans = int64(empty - s.statsBaseEmpty)
		res.Contention[k] = s.cont
	}
	c.collectCacheStats(&res)
	if res.TotalMs > 0 {
		res.SubnetsPerHour = float64(res.Completed) / (res.TotalMs / 3.6e6)
	}
	if c.obs != nil {
		res.ObservedTrace = c.obs
		res.Trace = CanonicalTrace(w)
		if c.dist != nil {
			// A dist worker observes only its local stages; its reference
			// is the canonical trace filtered to them. Partitions are
			// per-subnet, so a layer can straddle workers across subnets —
			// this local check is necessary but not sufficient, and the
			// coordinator's merged-trace verification is the full one.
			res.Trace = FilterTrace(res.Trace, c.dist.Stages)
		}
	}
	if c.tel != nil {
		// The first real concurrent-plane spans: reconstructed from the
		// event stream, so timeline/figure renderers work on both planes.
		res.Spans = SpansFromEvents(c.tel.Events())
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if c.recErr != nil {
		return res, fmt.Errorf("engine: checkpoint recorder: %w", c.recErr)
	}
	if c.sendErr != nil {
		return res, c.sendErr
	}
	if c.crashErr != nil {
		// An injected crash aborts the whole run, like the process death
		// it models. The partial result (Deadlock set, the committed
		// prefix in the recorder) returns with the typed error so callers
		// can bump the incarnation and resume; the partial trace is not
		// checked against the full-run reference.
		return res, c.crashErr
	}
	if res.Deadlock {
		// Safe to read stage state directly: wg.Wait above is the
		// happens-before edge.
		stall := &StallError{Completed: res.Completed, Total: n}
		for _, s := range c.stages {
			if s != nil {
				stall.Stages = append(stall.Stages, c.healthOf(s, false))
			}
		}
		return res, stall
	}
	if c.obs != nil {
		if !c.obs.PerLayerEqual(res.Trace) {
			return res, fmt.Errorf("engine: concurrent execution violated CSP: observed per-layer access order diverges from the sequential reference")
		}
	}
	return res, nil
}

// collectCacheStats folds each stage cache's counters into the result's
// per-stage and aggregate memory fields.
func (c *ccRun) collectCacheStats(res *Result) {
	res.CacheHitRate = -1 // no cache, or no accesses: N/A
	if !c.cfg.ConcurrentMem.Enabled() {
		return
	}
	res.CacheStats = make([]metrics.StageCache, c.w.D)
	var hits, misses int
	var budget int64
	for k, s := range c.stages {
		if s == nil {
			res.CacheStats[k] = metrics.StageCache{Stage: k}
			continue
		}
		st := s.cache.Stats()
		res.CacheStats[k] = metrics.StageCache{
			Stage:             k,
			Hits:              st.Hits,
			Misses:            st.Misses,
			Prefetches:        st.Prefetches,
			LatePrefetches:    st.LatePrefetches,
			DroppedPrefetches: st.DroppedPrefetches,
			EvictionsForced:   st.EvictionsForced,
			OverCapacity:      st.OverCapacity,
			SwapInBytes:       st.SwapInBytes,
			SwapOutBytes:      st.SwapOutBytes,
			PeakBytes:         st.PeakBytes,
			StallMs:           st.StallMs,
		}
		hits += st.Hits
		misses += st.Misses
		res.StallMs += st.StallMs
		res.DroppedPrefetches += st.DroppedPrefetches
		budget += s.cache.Capacity()
	}
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	res.CachedParamBytes = budget
	res.CPUMemBytes = c.w.Net.TotalParamBytes()
}

// prefetchLoop is the body of one stage's async prefetcher goroutine: it
// expands subnet prefetch requests into layer copies on the stage cache,
// concurrently with the stage's compute. The stage worker opportunistically
// drains the same queue at its scheduling boundary (the point where the
// simulator delivers arrival events), so a request enqueued before a task
// is admitted is applied even if this goroutine is starved.
func (c *ccRun) prefetchLoop(s *ccStage, stop <-chan struct{}) {
	for {
		select {
		case seq := <-s.fetchQ:
			c.applyFetch(s, seq)
		case <-stop:
			return
		}
	}
}

// applyFetch prefetches every layer of subnet seq's partition on the
// stage. An injected prefetch-copy failure abandons the whole fetch and
// counts it as a dropped prefetch: the task's later Acquire misses and
// fetches synchronously — a stall, never a hang. The decision is keyed
// by (stage, global seq), so every requester of the same fetch fails
// consistently.
func (c *ccRun) applyFetch(s *ccStage, seq int) {
	if c.inj != nil && c.inj.FetchFails(s.k, s.base+seq) {
		s.telFault(telemetry.OpFaultFetch, s.base+seq, telemetry.KindNone, 0)
		s.cache.NoteDropped()
		return
	}
	for _, id := range c.w.stageIDs[seq][s.k] {
		s.cache.Prefetch(id, c.w.Net.Meta[id].ParamBytes)
	}
}

// requestFetch enqueues a subnet prefetch for the stage without ever
// blocking the caller (which may be a neighbouring stage goroutine). A
// saturated queue drops the request and counts it: the later miss stays
// attributable.
func (s *ccStage) requestFetch(seq int) {
	if s.fetchQ == nil {
		return
	}
	select {
	case s.fetchQ <- seq:
	default:
		s.cache.NoteDropped()
	}
}

// stealFetches non-blockingly applies every pending prefetch request on
// the stage's own queue (see prefetchLoop).
func (c *ccRun) stealFetches(s *ccStage) {
	if s.fetchQ == nil {
		return
	}
	for {
		select {
		case seq := <-s.fetchQ:
			c.applyFetch(s, seq)
		default:
			return
		}
	}
}

// stageLoop is the body of one stage goroutine: drain inputs, run the
// highest-priority admissible task, park when nothing is runnable.
func (c *ccRun) stageLoop(ctx context.Context, s *ccStage) {
	// The flush pairs with RunConcurrent's wg.Wait before it reads the
	// bus: no batched event may outlive its producer goroutine.
	defer s.telb.Flush()
	n := len(c.w.Subnets)
	for s.fwdDone < n || s.bwdDone < n {
		if ctx.Err() != nil || c.crashed.Load() {
			return
		}
		c.drain(s)
		if s.k == 0 {
			s.refill(c.cfg.InflightLimit, n)
			c.stealFetches(s) // make refill's prefetches effective this iteration
		}
		// Backward tasks always run first (§3.2): they retire dependencies
		// and widen every stage's schedulable set.
		if c.runBackward(ctx, s) {
			continue
		}
		if c.runForward(ctx, s) {
			continue
		}
		// Nothing admissible: park until an input or notification arrives.
		// The health publish keeps the probe's view of queue/block state
		// fresh while idle without counting as progress. Parking is the
		// natural batch boundary: flush so observers (debug snapshots, an
		// overlapping reader) see a quiet stage's events promptly.
		s.telb.Flush()
		c.publishHealth(s, false, false)
		s.cont.Parks++
		timer := time.NewTimer(ccParkPoll)
		select {
		case note := <-s.notes:
			s.apply(note)
		case seq := <-s.fwdIn:
			s.acceptFwd(seq)
		case b := <-s.bwdIn:
			s.acceptBwd(b)
		case <-ctx.Done():
		case <-timer.C:
		}
		timer.Stop()
	}
}

// drain non-blockingly absorbs every pending notification, arrival, and
// prefetch request.
func (c *ccRun) drain(s *ccStage) {
	for {
		select {
		case note := <-s.notes:
			s.apply(note)
			continue
		default:
		}
		if s.fwdIn != nil {
			select {
			case seq := <-s.fwdIn:
				s.acceptFwd(seq)
				continue
			default:
			}
		}
		if s.bwdIn != nil {
			select {
			case b := <-s.bwdIn:
				s.acceptBwd(b)
				continue
			default:
			}
		}
		if s.fetchQ != nil {
			select {
			case seq := <-s.fetchQ:
				c.applyFetch(s, seq)
				continue
			default:
			}
		}
		return
	}
}

// acceptFwd queues an activation arrival and prefetches its context (the
// simulator's prefetch-on-arrival). Under fault injection, duplicated
// deliveries are dropped here before any side effect.
func (s *ccStage) acceptFwd(seq int) {
	if s.seenFwd != nil {
		if s.seenFwd[seq] {
			return
		}
		s.seenFwd[seq] = true
	}
	s.fwdQ = append(s.fwdQ, seq)
	s.telFlow(telemetry.OpTransferRecv, telemetry.PhaseFlowEnd, seq, telemetry.KindForward, s.k-1)
	s.telTask(telemetry.OpTaskAdmit, telemetry.PhaseInstant, seq, telemetry.KindForward)
	s.requestFetch(seq)
}

// acceptBwd queues a gradient arrival, stashes its carried pending-
// backward records for the predictor, and prefetches the backward's
// context.
func (s *ccStage) acceptBwd(b ccBwd) {
	if s.seenBwd != nil {
		if s.seenBwd[b.seq] {
			return
		}
		s.seenBwd[b.seq] = true
	}
	s.bwdReady = append(s.bwdReady, b.seq)
	s.telFlow(telemetry.OpTransferRecv, telemetry.PhaseFlowEnd, b.seq, telemetry.KindBackward, s.k+1)
	s.telTask(telemetry.OpTaskAdmit, telemetry.PhaseInstant, b.seq, telemetry.KindBackward)
	if len(b.carried) > 0 && s.carriedBy != nil {
		s.carriedBy[b.seq] = append(s.carriedBy[b.seq], b.carried...)
	}
	s.requestFetch(b.seq)
}

// apply folds a cross-stage notification into the local scheduler.
func (s *ccStage) apply(n ccNote) {
	s.cont.Notes++
	s.sched.MarkWritten(n.seq, n.ids)
	if n.finished {
		s.sched.MarkFinished(n.seq)
	}
}

// sendNote delivers a cross-stage notification without ever blocking: the
// (D+1)*n buffer sizing is a never-block invariant (each stage emits at
// most n notes to every other stage), and a blocked send here would
// deadlock the pipeline silently. A full buffer is therefore a protocol
// bug, and the send fails loudly instead.
func (s *ccStage) sendNote(n ccNote) {
	select {
	case s.notes <- n:
	default:
		panic(fmt.Sprintf(
			"engine: stage %d notes buffer full (cap %d): cross-stage notification would block; the (D+1)*n sizing invariant is violated",
			s.k, cap(s.notes)))
	}
}

// refill keeps stage 0's forward queue stocked from the exploration
// stream, bounded by the inflight window (retrieve() of Algorithm 1). Only
// the near-term retrievals are prefetched: the inflight window is wider
// than the cache budget, and prefetching all of it would LRU-evict exactly
// the contexts needed soonest. Later retrievals are fetched by the
// predictor's forward forecast as execution approaches them.
func (s *ccStage) refill(inflightLimit, n int) {
	for s.retrieved < n && s.retrieved-s.bwdDone < inflightLimit {
		s.fwdQ = append(s.fwdQ, s.retrieved)
		s.telTask(telemetry.OpTaskAdmit, telemetry.PhaseInstant, s.retrieved, telemetry.KindForward)
		if s.retrieved-s.fwdDone < 2 {
			s.requestFetch(s.retrieved)
		}
		s.retrieved++
	}
}

// bytesOf sizes a layer for the stage caches.
func (c *ccRun) bytesOf(id supernet.LayerID) int64 {
	return c.w.Net.Meta[id].ParamBytes
}

// healthOf captures one stage's current scheduler state for the health
// probe and the stall report. Reads only stage-goroutine-owned fields
// (plus the thread-safe cache), so it is valid from the owning
// goroutine during the run and from RunConcurrent after wg.Wait.
func (c *ccRun) healthOf(s *ccStage, wedged bool) StageHealth {
	h := StageHealth{
		Stage: s.k, FwdDone: s.fwdDone, BwdDone: s.bwdDone,
		QueueLen: len(s.fwdQ), BwdQueueLen: len(s.bwdReady),
		BlockedHead: -1, OwnerSubnet: -1,
		LastTaskNs: s.lastTaskNs, Wedged: wedged,
	}
	if len(s.fwdQ) > 0 {
		head := s.fwdQ[0]
		h.BlockedHead = s.base + head
		if w := s.sched.BlockingWriter(head); w >= 0 {
			h.OwnerSubnet = s.base + w
		}
	}
	if s.cache != nil {
		h.CacheResidentBytes = s.cache.Used()
	}
	return h
}

// publishHealth pushes the stage's state into the health probe;
// taskDone stamps the completion and bumps the probe's monotone
// progress counter — parks and queue churn never count as progress.
func (c *ccRun) publishHealth(s *ccStage, taskDone, wedged bool) {
	if c.probe == nil {
		return
	}
	if taskDone {
		s.lastTaskNs = time.Now().UnixNano()
	}
	c.probe.publish(c.healthOf(s, wedged), taskDone)
}

// maybeWedge consults the fault plane's targeted wedge at a task
// boundary — same site discipline as maybeCrash — and, when it fires,
// hangs the stage goroutine until the run is cancelled or another
// stage crashes. It models a stuck kernel or lost collective rather
// than a death: no state is corrupted, no progress is made, and
// nothing inside the engine will ever unwedge it — detection is the
// supervision watchdog's job (or the caller's ctx deadline).
func (c *ccRun) maybeWedge(ctx context.Context, s *ccStage, seq int, kind int8) bool {
	if c.inj == nil || !c.inj.WedgeAt(s.k, s.base+seq, kind) {
		return false
	}
	s.telFault(telemetry.OpFaultWedge, s.base+seq, kind, int64(c.inj.Incarnation()))
	// The goroutine is about to hang until cancellation: flush the batch
	// now, or up to batcherCap already-completed span events stay
	// invisible to mid-run observers (the watchdog's debug snapshot) for
	// the whole stall — exactly when they matter most.
	s.telb.Flush()
	c.publishHealth(s, false, true)
	for ctx.Err() == nil && !c.crashed.Load() {
		timer := time.NewTimer(ccParkPoll)
		select {
		case <-ctx.Done():
		case <-timer.C:
		}
		timer.Stop()
	}
	return true
}

// maybeCrash consults the fault plane at a task boundary — after the
// task is selected, before any of its side effects (trace emission,
// scheduler state, cache locks) — and, when the injector says so, kills
// the run: the crash event is recorded, the typed error stashed, and
// every stage goroutine unwinds at its next loop check, modeling a
// process death whose durable state is exactly the recorder's last cut.
func (c *ccRun) maybeCrash(s *ccStage, seq int, kind int8) bool {
	if c.inj == nil || !c.inj.CrashAt(s.k, s.base+seq, kind) {
		return false
	}
	s.telFault(telemetry.OpFaultCrash, s.base+seq, kind, int64(c.inj.Incarnation()))
	c.crashOnce.Do(func() {
		c.crashErr = &fault.CrashError{
			Stage: s.k, Seq: s.base + seq, Kind: kind,
			Incarnation: c.inj.Incarnation(),
		}
	})
	c.crashed.Store(true)
	return true
}

// transport delivers one cross-stage message through the fault plane.
// deliver must be a non-blocking buffered-channel send (the arrival
// buffers are sized for every possible delivery) and is invoked once,
// twice (Duplicate), or after a wait (Delay). A Drop burns one bounded
// retry with exponential backoff; when retries are exhausted the message
// escalates to the reliable path and delivers — faults slow the
// pipeline, they never wedge it.
func (c *ccRun) transport(s *ccStage, kind int8, seq int, deliver func()) {
	if c.inj == nil {
		deliver()
		return
	}
	gseq := s.base + seq
	for attempt := 0; ; attempt++ {
		v := c.inj.Message(kind, s.k, gseq, attempt)
		if v.Action == fault.Drop && attempt >= c.inj.MaxRetries() {
			v.Action = fault.Deliver
		}
		switch v.Action {
		case fault.Drop:
			s.telFault(telemetry.OpFaultDrop, gseq, kind, int64(attempt))
			time.Sleep(c.inj.Backoff(attempt))
			continue
		case fault.Delay:
			s.telFault(telemetry.OpFaultDelay, gseq, kind, int64(v.Wait))
			time.Sleep(v.Wait)
			deliver()
		case fault.Duplicate:
			s.telFault(telemetry.OpFaultDup, gseq, kind, 0)
			deliver()
			deliver()
		default:
			deliver()
		}
		return
	}
}

// snapshotCut hands the stage-0 backward frontier to the checkpoint
// recorder when it advanced: subnets below the frontier are fully
// retired — their WRITEs are in the committed sequential prefix — so
// (frontier, finished-gaps) is a crash-consistent cut. Called only by
// the stage-0 goroutine, after the frontier-advancing self-apply.
func (c *ccRun) snapshotCut(s *ccStage) {
	if c.rec == nil {
		return
	}
	f := s.sched.Frontier()
	if f <= c.lastCut && c.lastCut != 0 {
		return
	}
	c.lastCut = f
	cut := fault.Cut{Cursor: c.base + f}
	for _, seq := range s.sched.FinishedSeqs() {
		cut.Finished = append(cut.Finished, c.base+seq)
	}
	if err := c.rec.Snapshot(cut); err != nil {
		if c.recErr == nil {
			c.recErr = err
		}
		c.crashed.Store(true)
		return
	}
	s.telFault(telemetry.OpCheckpoint, c.base+f, telemetry.KindNone, int64(c.base+f))
}

// runBackward executes the lowest-sequence ready backward, emits its
// WRITEs, and broadcasts the dependency release. Returns false if no
// backward is ready.
func (c *ccRun) runBackward(ctx context.Context, s *ccStage) bool {
	if len(s.bwdReady) == 0 {
		return false
	}
	best := 0
	for i := 1; i < len(s.bwdReady); i++ {
		if s.bwdReady[i] < s.bwdReady[best] {
			best = i
		}
	}
	seq := s.bwdReady[best]
	if c.maybeWedge(ctx, s, seq, telemetry.KindBackward) {
		return true
	}
	if c.maybeCrash(s, seq, telemetry.KindBackward) {
		return true
	}
	s.bwdReady = append(s.bwdReady[:best], s.bwdReady[best+1:]...)
	ids := c.w.stageIDs[seq][s.k]
	if s.tel != nil {
		s.telb.Emit(telemetry.Event{
			Op: telemetry.OpSchedAdmit, Phase: telemetry.PhaseInstant,
			Stage: int32(s.k), Worker: telemetry.WorkerStage,
			Subnet: int32(s.base + seq), Kind: telemetry.KindBackward, Arg: int64(best),
		})
	}
	s.telTask(telemetry.OpTaskStart, telemetry.PhaseBegin, seq, telemetry.KindBackward)

	if s.pred != nil {
		// This backward is executing: any pending record forecasting it is
		// moot now. Then run Algorithm 3's backward call site with the
		// records this gradient carried from downstream.
		s.pred.Retire(seq)
		carried := s.carriedBy[seq]
		delete(s.carriedBy, seq)
		for _, f := range s.pred.OnBackward(s.fwdQ, seq, carried) {
			s.requestFetch(f.Seq)
		}
	}
	if s.cache != nil {
		s.cache.AcquireFor(ids, c.bytesOf, int32(seq), telemetry.KindBackward)
	}
	if s.k > 0 {
		// Cross-stage context push (§3.3): the upstream stage will process
		// this subnet's backward next; prefetch its context there, hiding
		// the copy behind this stage's compute plus the transfer.
		c.pushFetch(s, s.k-1, seq)
	}
	c.compute(seq, s.k, task.Backward)
	// The WRITE must be visible in the trace before any dependent learns
	// of the release: append first, notify after. The channel send/receive
	// pair then carries the happens-before edge to every dependent READ.
	c.emit(ids, seq, s.k, trace.Write)
	finished := s.k == 0
	s.apply(ccNote{seq: seq, ids: ids, finished: finished})
	s.cont.Notes-- // self-application is not cross-stage traffic
	if finished {
		c.snapshotCut(s)
		if c.probe != nil {
			c.probe.advanceFrontier(c.base + s.sched.Frontier())
		}
	}
	if c.dist != nil {
		// One uniform path for all cross-stage traffic in a dist run:
		// the note rides the transport even to co-local stages.
		c.broadcastNote(s, ccNote{seq: seq, ids: ids, finished: finished})
	} else {
		for _, t := range c.stages {
			if t != s {
				t.sendNote(ccNote{seq: seq, ids: ids, finished: finished})
			}
		}
	}
	if s.k > 0 {
		s.telFlow(telemetry.OpTransferSend, telemetry.PhaseFlowBegin, seq, telemetry.KindBackward, s.k)
		grad := ccBwd{seq: seq, carried: s.pendingCarry()}
		c.transport(s, telemetry.KindBackward, seq, func() {
			if c.dist != nil {
				c.sendBwd(s, grad)
			} else {
				c.stages[s.k-1].bwdIn <- grad
			}
		})
	}
	if s.cache != nil {
		s.cache.Release(ids)
		// The subnet's backward has flushed here: its context is finished
		// on this stage and leaves the cache (the paper's eviction of
		// finished contexts).
		s.cache.Evict(ids)
	}
	s.telTask(telemetry.OpTaskComplete, telemetry.PhaseEnd, seq, telemetry.KindBackward)
	s.bwdDone++
	s.cont.Tasks++
	c.publishHealth(s, true, false)
	return true
}

// pendingCarry collects the pending-backward records this stage announces
// upstream with a gradient transfer (Algorithm 3 lines 10–11): every
// queued forward currently blocked by an unfinished earlier writer, each
// announced at most once.
func (s *ccStage) pendingCarry() []csp.PendingBackward {
	if s.pred == nil {
		return nil
	}
	var carry []csp.PendingBackward
	for _, q := range s.fwdQ {
		if s.announced[q] {
			continue
		}
		if w := s.sched.BlockingWriter(q); w >= 0 {
			s.announced[q] = true
			carry = append(carry, csp.PendingBackward{Seq: q, Precedence: w})
		}
	}
	s.cont.Carried += int64(len(carry))
	return carry
}

// runForward admits the first CSP-admissible queued forward (Algorithm 2),
// emits its READs, and forwards the activation downstream. Returns false
// if the queue is empty or every queued subnet is blocked.
func (c *ccRun) runForward(ctx context.Context, s *ccStage) bool {
	if len(s.fwdQ) == 0 {
		return false
	}
	qidx, seq := s.sched.Schedule(s.fwdQ)
	if qidx < 0 {
		if s.tel != nil {
			// Every queued forward is CSP-blocked (Algorithm 2): attribute
			// the delay to the queue head and the writer blocking it, once
			// per distinct (head, writer) episode rather than per rescan.
			head := s.fwdQ[0]
			writer := s.sched.BlockingWriter(head)
			if head != s.lastDelaySeq || writer != s.lastDelayWriter {
				s.lastDelaySeq, s.lastDelayWriter = head, writer
				gwriter := int64(writer)
				if writer >= 0 {
					gwriter = int64(s.base + writer)
				}
				s.telb.Emit(telemetry.Event{
					Op: telemetry.OpSchedDelay, Phase: telemetry.PhaseInstant,
					Stage: int32(s.k), Worker: telemetry.WorkerStage,
					Subnet: int32(s.base + head), Kind: telemetry.KindForward,
					Arg: gwriter,
				})
			}
		}
		return false
	}
	if c.maybeWedge(ctx, s, seq, telemetry.KindForward) {
		return true
	}
	if c.maybeCrash(s, seq, telemetry.KindForward) {
		return true
	}
	s.lastDelaySeq, s.lastDelayWriter = -1, -1
	s.fwdQ = append(s.fwdQ[:qidx], s.fwdQ[qidx+1:]...)
	ids := c.w.stageIDs[seq][s.k]
	if s.tel != nil {
		s.tel.Emit(telemetry.Event{
			Op: telemetry.OpSchedAdmit, Phase: telemetry.PhaseInstant,
			Stage: int32(s.k), Worker: telemetry.WorkerStage,
			Subnet: int32(s.base + seq), Kind: telemetry.KindForward, Arg: int64(qidx),
		})
	}
	s.telTask(telemetry.OpTaskStart, telemetry.PhaseBegin, seq, telemetry.KindForward)
	if s.pred != nil {
		// Algorithm 3's forward call site: release pending backwards whose
		// precedence this forward satisfies, and forecast the next
		// schedulable forward.
		for _, f := range s.pred.OnForward(s.fwdQ, seq) {
			s.requestFetch(f.Seq)
		}
	}
	if s.cache != nil {
		s.cache.AcquireFor(ids, c.bytesOf, int32(seq), telemetry.KindForward)
	}
	if s.k < c.w.D-1 {
		// Cross-stage context push (§3.3), forward direction.
		c.pushFetch(s, s.k+1, seq)
	}
	// The READ happens at admission — after the CSP check, before compute —
	// mirroring the simulator's context-acquire semantics.
	c.emit(ids, seq, s.k, trace.Read)
	c.compute(seq, s.k, task.Forward)
	if s.cache != nil {
		s.cache.Release(ids)
	}
	if s.k < c.w.D-1 {
		s.telFlow(telemetry.OpTransferSend, telemetry.PhaseFlowBegin, seq, telemetry.KindForward, s.k)
	}
	s.telTask(telemetry.OpTaskComplete, telemetry.PhaseEnd, seq, telemetry.KindForward)
	if s.k < c.w.D-1 {
		c.transport(s, telemetry.KindForward, seq, func() {
			if c.dist != nil {
				c.sendFwd(s, seq)
			} else {
				c.stages[s.k+1].fwdIn <- seq
			}
		})
	} else {
		// Loss computed: the backward is immediately ready locally.
		s.bwdReady = append(s.bwdReady, seq)
	}
	s.fwdDone++
	s.cont.Tasks++
	c.publishHealth(s, true, false)
	return true
}

// ccStraggleUnit is the wall-clock cost of one unit of excess stage
// slowness on the concurrent plane: a stage with speed factor s sleeps
// (s−1)·ccStraggleUnit per task, making a declared straggler a real
// wall-clock straggler without stretching test runtimes.
const ccStraggleUnit = 25 * time.Microsecond

// compute stands in for the stage's kernel work. With TimingJitter set it
// sleeps a deterministic pseudo-random duration (up to ~50µs scaled by the
// jitter magnitude) keyed by (JitterSeed, task) — real wall-clock
// perturbation, modeling foreign hardware exactly as the simulator's
// jitter does. StageSpeeds add a per-stage deterministic slowdown on
// top (heterogeneous clusters, stragglers). Without either it still
// yields to the Go scheduler so stage interleavings stay adversarial
// rather than lockstep.
func (c *ccRun) compute(seq, stage int, kind task.Kind) {
	var d time.Duration
	if c.cfg.TimingJitter > 0 {
		r := rng.Labeled(c.cfg.JitterSeed, fmt.Sprintf("ccjitter/%d/%d/%d", c.base+seq, stage, int(kind)))
		d = time.Duration(c.cfg.TimingJitter * r.Float64() * float64(50*time.Microsecond))
	}
	if sp := c.cfg.StageSpeed(stage); sp > 1 {
		d += time.Duration((sp - 1) * float64(ccStraggleUnit))
	}
	if d > 0 {
		time.Sleep(d)
		return
	}
	runtime.Gosched()
}

// emit appends one access per layer to the observed trace, in stage-index
// order, under the collector lock.
func (c *ccRun) emit(ids []supernet.LayerID, seq, stage int, kind trace.AccessKind) {
	if c.obs == nil {
		return
	}
	c.mu.Lock()
	for _, id := range ids {
		c.obs.Append(0, id, c.base+seq, stage, kind)
	}
	c.mu.Unlock()
}

// CanonicalTrace builds the causal (sequential-reference) parameter-access
// order for a world: for each subnet in sequence order, its READs stage by
// stage downstream, then its WRITEs stage by stage back upstream — exactly
// the emission order of a sequential run, and the deterministic
// normalization of every CSP-compliant interleaving. The replay trainer
// consumes it directly.
func CanonicalTrace(w *World) *trace.Trace {
	tr := &trace.Trace{}
	for seq := range w.Subnets {
		for k := 0; k < w.D; k++ {
			for _, id := range w.stageIDs[seq][k] {
				tr.Append(0, id, w.SeqBase+seq, k, trace.Read)
			}
		}
		for k := w.D - 1; k >= 0; k-- {
			for _, id := range w.stageIDs[seq][k] {
				tr.Append(0, id, w.SeqBase+seq, k, trace.Write)
			}
		}
	}
	return tr
}
