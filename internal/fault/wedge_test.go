package fault

import (
	"strings"
	"testing"
)

// TestParsePlanWedgeRoundTrip pins the wedgeat spec syntax and its
// String round-trip.
func TestParsePlanWedgeRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=3,wedgeat=1:6:F")
	if err != nil {
		t.Fatal(err)
	}
	if p.WedgeTask == nil || p.WedgeTask.Stage != 1 || p.WedgeTask.Seq != 6 || p.WedgeTask.Kind != KindForward {
		t.Fatalf("wedge task parsed wrong: %+v", p.WedgeTask)
	}
	if !p.Enabled() {
		t.Fatal("plan with only a wedge task reports disabled")
	}
	s := p.String()
	if !strings.Contains(s, "wedgeat=1:6:F") {
		t.Fatalf("String() lost the wedge: %q", s)
	}
	back, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if *back.WedgeTask != *p.WedgeTask {
		t.Fatalf("round trip changed the wedge: %+v vs %+v", back.WedgeTask, p.WedgeTask)
	}
}

func TestValidateRejectsMalformedWedge(t *testing.T) {
	p := &Plan{Seed: 1, WedgeTask: &TaskRef{Stage: -1, Seq: 0, Kind: KindForward}}
	if err := p.Validate(); err == nil {
		t.Fatal("negative wedge stage accepted")
	}
	if _, err := ParsePlan("wedgeat=1:2"); err == nil {
		t.Fatal("two-field wedge ref accepted")
	}
}

// TestWedgeAtIncarnationGating pins the recovery contract: a wedge
// names incarnation 0 only — the resumed incarnation after the
// watchdog cuts the checkpoint must not re-wedge, or recovery would
// never terminate.
func TestWedgeAtIncarnationGating(t *testing.T) {
	plan := Plan{Seed: 5, WedgeTask: &TaskRef{Stage: 2, Seq: 9, Kind: KindBackward}}
	in0, err := NewInjector(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !in0.WedgeAt(2, 9, KindBackward) {
		t.Fatal("incarnation 0 did not wedge at the named site")
	}
	for name, args := range map[string][3]int{
		"wrong-stage": {1, 9, int(KindBackward)},
		"wrong-seq":   {2, 8, int(KindBackward)},
		"wrong-kind":  {2, 9, int(KindForward)},
	} {
		if in0.WedgeAt(args[0], args[1], int8(args[2])) {
			t.Errorf("%s: wedge fired off-site", name)
		}
	}
	in1, err := NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in1.WedgeAt(2, 9, KindBackward) {
		t.Fatal("incarnation 1 re-wedged — recovery would never terminate")
	}
}
