package train

import (
	"math"
	"sort"

	"naspipe/internal/data"
	"naspipe/internal/layers"
	"naspipe/internal/supernet"
	"naspipe/internal/tensor"
)

// Evaluate returns a subnet's average loss over nBatches validation
// batches of the trained supernet, without updating parameters.
func Evaluate(cfg Config, net *supernet.Numeric, sub supernet.Subnet, nBatches int) float64 {
	cfg = cfg.withDefaults()
	src := data.NewSource(cfg.Dataset, cfg.Dim, cfg.BatchSize, cfg.Seed)
	views := make([]*layers.Layer, len(sub.Choices))
	for b, c := range sub.Choices {
		views[b] = net.At(b, c)
	}
	var total float64
	var count int
	for nb := 0; nb < nBatches; nb++ {
		batch := src.ValidationBatch(nb)
		for i := range batch.Inputs {
			x := batch.Inputs[i]
			for b := range views {
				x = views[b].Forward(x)
			}
			var loss float32
			for j := range x {
				d := x[j] - batch.Targets[i][j]
				loss += 0.5 * d * d
			}
			total += float64(loss)
			count++
		}
	}
	return total / float64(count)
}

// Score converts a validation loss into the paper's reporting units: a
// BLEU-like score for NLP tasks and a top-5-accuracy-like percentage for
// CV tasks. Both are documented monotone proxies — the absolute BLEU of
// a real Evolved Transformer is not reproducible without the real stack
// (DESIGN.md §6), but relative orderings and exact repeatability are the
// properties under test, and both survive any fixed monotone map.
func Score(d layers.Domain, valLoss float64) float64 {
	if d == layers.NLP {
		// BLEU-like: ~22 at low loss, decaying with loss.
		return 25 * math.Exp(-valLoss/2)
	}
	// Top-5-like percentage: approaches ~90 at low loss.
	return 90 / (1 + valLoss/2)
}

// BestSubnetScore evaluates candidate subnets on the trained supernet and
// returns the best score — the "search accuracy" column of Table 3 when
// the candidates come from the exploration algorithm.
func BestSubnetScore(cfg Config, net *supernet.Numeric, candidates []supernet.Subnet, nBatches int) (best supernet.Subnet, score float64) {
	type scored struct {
		sub   supernet.Subnet
		score float64
	}
	out := make([]scored, len(candidates))
	for i, sub := range candidates {
		loss := Evaluate(cfg, net, sub, nBatches)
		out[i] = scored{sub, Score(cfg.Space.Domain, loss)}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	if len(out) == 0 {
		return supernet.Subnet{}, 0
	}
	return out[0].sub, out[0].score
}

// ChecksumVector flattens the checksum into a printable hex-like pair for
// full-precision result comparison in reports.
func ChecksumVector(sum uint64) [2]uint32 {
	return [2]uint32{uint32(sum >> 32), uint32(sum)}
}

// LossesBitwiseEqual reports whether two loss series are bitwise equal —
// the artifact's experiment 1 criterion ("all 500 training steps outputs
// in full precision floating point matches between settings").
func LossesBitwiseEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	return tensor.Vector(a).EqualBits(tensor.Vector(b))
}
