// Package explore implements the exploration side of supernet NAS: the
// SPOS subnet stream consumed by the training system (already provided by
// supernet.Sampler) and the evolutionary search the paper uses as its
// default search strategy (§5: "we used evolution as the default search
// strategy") to derive the final architecture from a trained supernet.
//
// The search is regularized evolution: a population of subnets is scored
// by validation loss on the trained supernet; each generation draws a
// tournament, mutates the winner by re-sampling a few choice blocks, and
// replaces the oldest member. Everything is driven by labeled rng
// streams, so a search over a given supernet is exactly repeatable — the
// property that makes Table 3's "search accuracy" column comparable
// across runs.
package explore

import (
	"context"
	"fmt"
	"sort"

	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// SearchConfig parameterizes the evolutionary search.
type SearchConfig struct {
	Population  int // population size
	Generations int // mutation steps after the initial population
	Tournament  int // tournament sample size
	MutateProb  float64
	ValBatches  int // validation batches per fitness evaluation
	Seed        uint64
}

// DefaultSearchConfig returns a laptop-scale configuration.
func DefaultSearchConfig(seed uint64) SearchConfig {
	return SearchConfig{
		Population:  16,
		Generations: 32,
		Tournament:  4,
		MutateProb:  0.15,
		ValBatches:  2,
		Seed:        seed,
	}
}

// Candidate is a scored architecture.
type Candidate struct {
	Subnet supernet.Subnet
	Loss   float64
	Score  float64
	Age    int
}

// SearchResult reports the evolution outcome.
type SearchResult struct {
	Best       Candidate
	Evaluated  int
	History    []float64 // best score after each generation
	Population []Candidate
}

// Search runs regularized evolution over the trained numeric supernet.
func Search(cfg train.Config, net *supernet.Numeric, sc SearchConfig) (SearchResult, error) {
	return SearchContext(context.Background(), cfg, net, sc)
}

// SearchContext is Search under a context. Cancellation is checked
// between generations (each generation is one fitness evaluation — the
// expensive unit); on cancellation the best-so-far result is returned
// together with ctx.Err(), so callers can keep a truncated search.
func SearchContext(ctx context.Context, cfg train.Config, net *supernet.Numeric, sc SearchConfig) (SearchResult, error) {
	if sc.Population < 2 || sc.Tournament < 1 || sc.Tournament > sc.Population {
		return SearchResult{}, fmt.Errorf("explore: invalid search config %+v", sc)
	}
	space := cfg.Space
	r := rng.Labeled(sc.Seed, "evolution/"+space.Name)
	evaluate := func(sub supernet.Subnet) Candidate {
		loss := train.Evaluate(cfg, net, sub, sc.ValBatches)
		return Candidate{Subnet: sub, Loss: loss, Score: train.Score(space.Domain, loss)}
	}

	pop := make([]Candidate, sc.Population)
	for i := range pop {
		choices := make([]int, space.Blocks)
		for b := range choices {
			choices[b] = r.Intn(space.Choices)
		}
		pop[i] = evaluate(supernet.Subnet{Seq: i, Choices: choices})
		pop[i].Age = i
	}
	evaluated := sc.Population

	best := func() Candidate {
		b := pop[0]
		for _, c := range pop[1:] {
			if c.Score > b.Score {
				b = c
			}
		}
		return b
	}

	var history []float64
	age := sc.Population
	cancelled := false
	for g := 0; g < sc.Generations; g++ {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		// Tournament: sample Tournament members, take the fittest.
		winner := pop[r.Intn(len(pop))]
		for i := 1; i < sc.Tournament; i++ {
			c := pop[r.Intn(len(pop))]
			if c.Score > winner.Score {
				winner = c
			}
		}
		// Mutate: re-sample each block with MutateProb (at least one).
		child := winner.Subnet.Clone()
		mutated := false
		for b := range child.Choices {
			if r.Float64() < sc.MutateProb {
				child.Choices[b] = r.Intn(space.Choices)
				mutated = true
			}
		}
		if !mutated {
			child.Choices[r.Intn(space.Blocks)] = r.Intn(space.Choices)
		}
		child.Seq = age
		cand := evaluate(child)
		cand.Age = age
		age++
		evaluated++
		// Regularized evolution: replace the oldest member.
		oldest := 0
		for i := range pop {
			if pop[i].Age < pop[oldest].Age {
				oldest = i
			}
		}
		pop[oldest] = cand
		history = append(history, best().Score)
	}

	final := make([]Candidate, len(pop))
	copy(final, pop)
	sort.SliceStable(final, func(i, j int) bool { return final[i].Score > final[j].Score })
	res := SearchResult{Best: final[0], Evaluated: evaluated, History: history, Population: final}
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}
