package tensor

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"naspipe/internal/rng"
)

// Reference implementations: the pre-optimization sequential kernels and
// hash/fnv-based checksums, kept verbatim so the fast paths can be
// differentially tested against them (and benchmarked against them — the
// *Ref benchmarks are the "before" side of BENCH_speed.json, reproducible
// from the final tree).

func matVecRef(dst Vector, m *Matrix, x Vector) {
	for r := 0; r < m.Rows; r++ {
		var sum float32
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

func matTVecRef(dst Vector, m *Matrix, x Vector) {
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			dst[c] += v * xr
		}
	}
}

func outerAccumRef(dst *Matrix, a, b Vector, scale float32) {
	for r := 0; r < dst.Rows; r++ {
		ar := a[r] * scale
		row := dst.Data[r*dst.Cols : (r+1)*dst.Cols]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

func vectorChecksumRef(v Vector) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, f := range v {
		bits := math.Float32bits(f)
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func matrixChecksumRef(m *Matrix) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(m.Rows)
	buf[1] = byte(m.Rows >> 8)
	buf[2] = byte(m.Rows >> 16)
	buf[3] = byte(m.Rows >> 24)
	buf[4] = byte(m.Cols)
	buf[5] = byte(m.Cols >> 8)
	buf[6] = byte(m.Cols >> 16)
	buf[7] = byte(m.Cols >> 24)
	h.Write(buf[:])
	var b4 [4]byte
	for _, f := range m.Data {
		bits := math.Float32bits(f)
		b4[0] = byte(bits)
		b4[1] = byte(bits >> 8)
		b4[2] = byte(bits >> 16)
		b4[3] = byte(bits >> 24)
		h.Write(b4[:])
	}
	return h.Sum64()
}

func combineChecksumsRef(sums []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range sums {
		for i := 0; i < 8; i++ {
			buf[i] = byte(s >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// kernelShapes covers below-threshold, at-tile-boundary, off-boundary,
// and rectangular shapes so both the sequential fallback and the tiled
// fan-out paths are exercised.
func kernelShapes() [][2]int {
	return [][2]int{
		{1, 1}, {3, 5}, {12, 12}, {63, 65}, {64, 64},
		{128, 512}, {512, 128}, {200, 200}, {257, 191},
	}
}

// TestKernelsBitwiseEqualAcrossParallelism proves the tiled kernels
// produce bitwise-identical output to the sequential reference at every
// worker count — the Definition 1 obligation that lets the rest of the
// system treat kernel parallelism as invisible.
func TestKernelsBitwiseEqualAcrossParallelism(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := SetParallelism(workers)
			defer SetParallelism(prev)
			r := rng.New(99).Split("kernels")
			for _, shape := range kernelShapes() {
				rows, cols := shape[0], shape[1]
				m := randMat(r, rows, cols)
				x := randVec(r, cols)
				xt := randVec(r, rows)
				a := randVec(r, rows)

				got := make(Vector, rows)
				want := make(Vector, rows)
				MatVec(got, m, x)
				matVecRef(want, m, x)
				if !got.EqualBits(want) {
					t.Fatalf("MatVec %dx%d diverged from sequential reference", rows, cols)
				}

				gotT := make(Vector, cols)
				wantT := make(Vector, cols)
				MatTVec(gotT, m, xt)
				matTVecRef(wantT, m, xt)
				if !gotT.EqualBits(wantT) {
					t.Fatalf("MatTVec %dx%d diverged from sequential reference", rows, cols)
				}

				accGot := randMat(r, rows, cols)
				accWant := accGot.Clone()
				OuterAccum(accGot, a, x, 0.25)
				outerAccumRef(accWant, a, x, 0.25)
				if !accGot.Equal(accWant) {
					t.Fatalf("OuterAccum %dx%d diverged from sequential reference", rows, cols)
				}
			}
		})
	}
}

// TestChecksumMatchesFNVReference pins the inlined FNV-64a loops to the
// hash/fnv implementation they replaced: same byte stream, same digest.
func TestChecksumMatchesFNVReference(t *testing.T) {
	r := rng.New(7).Split("checksum")
	for _, n := range []int{0, 1, 3, 64, 1000} {
		v := randVec(r, n)
		if got, want := v.Checksum(), vectorChecksumRef(v); got != want {
			t.Fatalf("Vector(len=%d).Checksum = %#x, reference %#x", n, got, want)
		}
	}
	for _, shape := range [][2]int{{1, 1}, {12, 12}, {37, 53}, {256, 256}} {
		m := randMat(r, shape[0], shape[1])
		if got, want := m.Checksum(), matrixChecksumRef(m); got != want {
			t.Fatalf("Matrix(%dx%d).Checksum = %#x, reference %#x", shape[0], shape[1], got, want)
		}
	}
	sums := make([]uint64, 33)
	for i := range sums {
		sums[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	for n := 0; n <= len(sums); n++ {
		if got, want := CombineChecksums(sums[:n]), combineChecksumsRef(sums[:n]); got != want {
			t.Fatalf("CombineChecksums(%d sums) = %#x, reference %#x", n, got, want)
		}
	}
}

func TestMatVecPanicsOnAlias(t *testing.T) {
	m := NewMatrix(4, 4)
	buf := make(Vector, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("MatVec with aliased dst/x did not panic")
		}
	}()
	MatVec(buf[:4], m, buf[2:6])
}

func TestMatTVecPanicsOnAlias(t *testing.T) {
	m := NewMatrix(4, 4)
	buf := make(Vector, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("MatTVec with aliased dst/x did not panic")
		}
	}()
	MatTVec(buf, m, buf)
}

// TestDistinctSlicesDoNotTriggerAliasCheck guards against false positives:
// adjacent but non-overlapping views of one backing array are legal.
func TestDistinctSlicesDoNotTriggerAliasCheck(t *testing.T) {
	m := NewMatrix(4, 4)
	buf := make(Vector, 8)
	MatVec(buf[:4], m, buf[4:])
	MatTVec(buf[4:], m, buf[:4])
}
