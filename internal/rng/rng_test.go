package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/100 draws", same)
	}
}

func TestLabeledIndependence(t *testing.T) {
	a := Labeled(7, "sampler")
	b := Labeled(7, "weights")
	c := Labeled(7, "sampler")
	if a.Uint64() != c.Uint64() {
		t.Fatal("same label must give same stream")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("distinct labels should diverge immediately (with overwhelming probability)")
	}
}

func TestLabeledSeedSeparation(t *testing.T) {
	// Same label under different seeds must differ.
	a := Labeled(1, "x")
	b := Labeled(2, "x")
	if a.Uint64() == b.Uint64() {
		t.Fatal("same label under different seeds collided")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	p := New(9)
	before := *p
	_ = p.Split("child")
	if *p != before {
		t.Fatal("Split advanced parent state")
	}
	c1 := p.Split("a")
	c2 := p.Split("a")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("Split with equal labels must be deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.1 {
			t.Fatalf("bucket %d count %d too far from %f", i, c, expected)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestNormFloat32Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(r.NormFloat32())
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean %f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance %f too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleMatchesPerm(t *testing.T) {
	// Shuffle applied to the identity must equal Perm from an equal state.
	a := New(21)
	b := New(21)
	n := 16
	p := a.Perm(n)
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	b.Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
	for i := range p {
		if p[i] != s[i] {
			t.Fatalf("Perm and Shuffle diverge at %d: %v vs %v", i, p, s)
		}
	}
}

// Property: Intn is always in range for any seed and any n in [1, 1000].
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: streams are pure functions of seed — two streams from the same
// seed agree on arbitrarily interleaved draw kinds.
func TestQuickSeedPurity(t *testing.T) {
	f := func(seed uint64, ops []bool) bool {
		a, b := New(seed), New(seed)
		for _, op := range ops {
			if op {
				if a.Uint64() != b.Uint64() {
					return false
				}
			} else {
				if a.Float32() != b.Float32() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: labeled streams with distinct labels do not produce equal
// prefixes (overwhelmingly likely; treat any 4-draw full collision as a
// failure signal).
func TestQuickLabelSeparation(t *testing.T) {
	f := func(seed uint64, la, lb string) bool {
		if la == lb {
			return true
		}
		a, b := Labeled(seed, la), Labeled(seed, lb)
		for i := 0; i < 4; i++ {
			if a.Uint64() != b.Uint64() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(96)
	}
}
