package transport

import "sync"

// ChanTransport is the in-process Transport: one buffered queue per
// stage, no wire, no copies beyond the Msg value itself. It is the
// fast path the single-process engine uses when a Dist config routes
// co-local stages through a transport — pinned byte-identical against
// channel-direct execution by the engine's tests.
type ChanTransport struct {
	qs   []chan Msg
	done chan struct{}
	once sync.Once
}

// NewChanTransport returns a transport for `stages` stages whose
// per-stage queues hold `capacity` messages each (minimum 1). Capacity
// must cover the engine's worst-case in-flight traffic so Send never
// blocks the pipeline; the engine sizes it from depth × subnet count.
func NewChanTransport(stages, capacity int) *ChanTransport {
	if capacity < 1 {
		capacity = 1
	}
	t := &ChanTransport{qs: make([]chan Msg, stages), done: make(chan struct{})}
	for i := range t.qs {
		t.qs[i] = make(chan Msg, capacity)
	}
	return t
}

// Send delivers to m.To, or to every stage but m.From when To is
// Broadcast. Blocks when a destination queue is full; unblocks with
// ErrClosed if the transport closes while waiting.
func (t *ChanTransport) Send(m Msg) error {
	if m.To == Broadcast {
		for k := range t.qs {
			if k == m.From {
				continue
			}
			if err := t.put(k, m); err != nil {
				return err
			}
		}
		return nil
	}
	if m.To < 0 || m.To >= len(t.qs) {
		return decodeErrf(0, "stage %d outside the %d-stage pipeline", m.To, len(t.qs))
	}
	return t.put(m.To, m)
}

func (t *ChanTransport) put(k int, m Msg) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	select {
	case t.qs[k] <- m:
		return nil
	case <-t.done:
		return ErrClosed
	}
}

// Recv returns stage k's delivery queue.
func (t *ChanTransport) Recv(stage int) <-chan Msg { return t.qs[stage] }

// Close unblocks senders; queued messages remain readable.
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
