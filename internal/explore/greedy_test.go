package explore

import (
	"testing"

	"naspipe/internal/data"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

func greedyCfg() (train.Config, GreedyConfig) {
	sp := supernet.NLPc3.Scaled(6, 4)
	cfg := train.Config{Space: sp, Dim: 8, Seed: 21, BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	gc := DefaultGreedyConfig(5)
	gc.Steps = 20
	return cfg, gc
}

func TestGreedyDeterministicRankings(t *testing.T) {
	// The paper's GreedyNAS motivation: re-running the identified trial
	// must regenerate all collected information, including the quality
	// rankings at every step.
	cfg, gc := greedyCfg()
	a, err := Greedy(cfg, gc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(cfg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatal("greedy training weights not reproducible")
	}
	if a.RankingDigest() != b.RankingDigest() {
		t.Fatal("quality-ranking log not reproducible")
	}
	if len(a.Rankings) != gc.Steps {
		t.Fatalf("rankings length %d", len(a.Rankings))
	}
	for i, e := range a.Rankings {
		if e.Step != i || len(e.Losses) != gc.CandidatesPerStep {
			t.Fatalf("ranking entry %d malformed: %+v", i, e)
		}
		// The winner must be the argmin of its step's losses.
		for c, l := range e.Losses {
			if l < e.Losses[e.Winner] {
				t.Fatalf("step %d winner %d not argmin (candidate %d better)", i, e.Winner, c)
			}
		}
	}
}

func TestGreedyRankingsSensitiveToWeights(t *testing.T) {
	// Why reproducibility matters for analysis: different weight
	// trajectories (here: a different init/data seed) change which
	// candidates win — the ranking record is not recoverable unless the
	// training is exactly repeatable.
	cfg, gc := greedyCfg()
	a, err := Greedy(cfg, gc)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 22
	b, err := Greedy(cfg2, gc)
	if err != nil {
		t.Fatal(err)
	}
	// The candidate streams are identical (same gc.Seed); only the
	// weights differ. With 20 steps x 4 candidates the winner sequence
	// should diverge somewhere.
	winnersDiffer := false
	for i := range a.Rankings {
		if a.Rankings[i].Winner != b.Rankings[i].Winner {
			winnersDiffer = true
			break
		}
	}
	if !winnersDiffer {
		t.Skip("winner sequences happened to coincide; extremely unlikely but not an error")
	}
}

func TestGreedyTrainsTheSupernet(t *testing.T) {
	cfg, gc := greedyCfg()
	gc.Steps = 40
	res, err := Greedy(cfg, gc)
	if err != nil {
		t.Fatal(err)
	}
	fresh := supernet.BuildNumeric(cfg.Space, cfg.Dim, cfg.Seed)
	if res.Checksum == fresh.Checksum() {
		t.Fatal("greedy training did not update the supernet")
	}
}

func TestGreedyValidatesConfig(t *testing.T) {
	cfg, _ := greedyCfg()
	if _, err := Greedy(cfg, GreedyConfig{Steps: 0, CandidatesPerStep: 2}); err == nil {
		t.Fatal("expected config error")
	}
}
