package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// catalogDir locates the repo's scenarios/ catalog from the package dir.
const catalogDir = "../../scenarios"

func loadCatalog(t *testing.T) []*Scenario {
	t.Helper()
	ents, err := os.ReadDir(catalogDir)
	if err != nil {
		t.Fatalf("scenario catalog missing: %v", err)
	}
	var scens []*Scenario
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		s, err := Load(filepath.Join(catalogDir, e.Name()))
		if err != nil {
			t.Fatalf("catalog file does not validate: %v", err)
		}
		scens = append(scens, s)
	}
	sort.Slice(scens, func(i, j int) bool { return scens[i].Name < scens[j].Name })
	if len(scens) < 8 {
		t.Fatalf("catalog has %d scenarios, the sweep contract wants >= 8", len(scens))
	}
	return scens
}

func sweep(t *testing.T, scens []*Scenario) []byte {
	t.Helper()
	cells := make([]Cell, 0, len(scens))
	for _, s := range scens {
		cell, _, err := Run(context.Background(), s, Options{StateDir: t.TempDir()})
		if err != nil {
			t.Fatalf("scenario %s: %v", s.Name, err)
		}
		if len(cell.Failures) > 0 {
			t.Fatalf("scenario %s failed its gates: %v", s.Name, cell.Failures)
		}
		if !cell.Verified {
			t.Fatalf("scenario %s not bitwise-verified", s.Name)
		}
		cells = append(cells, cell)
	}
	out, err := EncodeScorecard(cells)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScorecardGolden is the conformance sweep's determinism proof: two
// full catalog sweeps, fresh state dirs, under whatever scheduling -race
// and GOMAXPROCS throw at them, must produce byte-identical scorecards —
// per-scenario checksums included. This is Definition 1 lifted from one
// run to the whole catalog.
func TestScorecardGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog sweep")
	}
	scens := loadCatalog(t)
	first := sweep(t, scens)
	second := sweep(t, scens)
	if !bytes.Equal(first, second) {
		t.Fatalf("scorecard not byte-identical across sweeps:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestCatalogFilesCanonical pins the catalog's hygiene: every committed
// scenario file is in canonical form (Encode of its parse), so diffs
// stay minimal and the fuzzer's fixed point covers exactly what ships.
func TestCatalogFilesCanonical(t *testing.T) {
	ents, err := os.ReadDir(catalogDir)
	if err != nil {
		t.Fatalf("scenario catalog missing: %v", err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		path := filepath.Join(catalogDir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(raw)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		canon, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, canon) {
			t.Errorf("%s is not canonical; re-encode it (go run ./cmd/naspipe-scenario -canon %s)", path, path)
		}
	}
}
