package csp

import (
	"testing"

	"naspipe/internal/supernet"
)

// fuzzWorkload decodes a fuzz input into a single-stage admission
// workload: up to 12 subnets, each selecting a non-empty subset of a
// 6-layer universe (one bitmask byte per subnet). Remaining bytes drive
// the retire policy. The tiny universe forces dense layer collisions —
// the regime where admission bugs live.
func fuzzWorkload(data []byte) (masks []byte, policy []byte) {
	if len(data) == 0 {
		return nil, nil
	}
	n := int(data[0])%12 + 1
	data = data[1:]
	masks = make([]byte, n)
	for i := range masks {
		m := byte(0x01)
		if i < len(data) {
			m = data[i] & 0x3f
			if m == 0 {
				m = 0x01
			}
		}
		masks[i] = m
	}
	if n < len(data) {
		policy = data[n:]
	}
	return masks, policy
}

func maskLayers(m byte) []supernet.LayerID {
	var out []supernet.LayerID
	for b := 0; b < 6; b++ {
		if m&(1<<b) != 0 {
			out = append(out, supernet.LayerID(b))
		}
	}
	return out
}

// FuzzSchedulerAdmission drives a Scheduler through a full admit/retire
// lifecycle and checks the two CSP admission properties on every step:
//
//  1. Safety — no forward is admitted while an earlier unfinished subnet
//     shares one of its layers (checked directly on the bitmasks, and
//     differentially against the paper-literal ReferenceSchedule).
//  2. Liveness — on a fault-free stream the workload always drains: a
//     Schedule scan that admits nothing while nothing is in flight
//     would be a permanent stall.
func FuzzSchedulerAdmission(f *testing.F) {
	f.Add([]byte{4, 0x03, 0x03, 0x0c, 0x30})             // two colliding pairs
	f.Add([]byte{8, 0x3f, 0x3f, 0x3f, 0x3f, 0x3f, 0x3f}) // total collision chain
	f.Add([]byte{3, 0x01, 0x02, 0x04, 0xff, 0x00, 0xaa}) // disjoint + retire noise
	f.Add([]byte{12})                                    // defaulted masks
	f.Fuzz(func(t *testing.T, data []byte) {
		masks, policy := fuzzWorkload(data)
		if masks == nil {
			t.Skip()
		}
		n := len(masks)
		s := New(0)
		for seq, m := range masks {
			ids := maskLayers(m)
			if err := s.AddSubnet(SubnetInfo{Seq: seq, AllLayers: ids, StageLayers: ids}); err != nil {
				t.Fatalf("AddSubnet(%d): %v", seq, err)
			}
		}

		queue := make([]int, n)
		for i := range queue {
			queue[i] = i
		}
		var inflight []int // admitted forwards whose backward has not retired
		retired := make([]bool, n)
		pi := 0
		nextPolicy := func() byte {
			if len(policy) == 0 {
				return 0
			}
			b := policy[pi%len(policy)]
			pi++
			return b
		}
		retire := func(k int) { // retire inflight[k]
			seq := inflight[k]
			inflight = append(inflight[:k], inflight[k+1:]...)
			s.MarkWritten(seq, maskLayers(masks[seq]))
			s.MarkFinished(seq)
			retired[seq] = true
		}

		for steps := 0; len(queue) > 0 || len(inflight) > 0; steps++ {
			if steps > 16*n+16 {
				t.Fatalf("no progress after %d steps: queue=%v inflight=%v", steps, queue, inflight)
			}
			fin, fr, subs := s.Snapshot()
			qi, qv := s.Schedule(queue)
			ri, rv := ReferenceSchedule(queue, fin, fr, subs)
			if qi != ri || qv != rv {
				t.Fatalf("indexed Schedule (%d,%d) != reference (%d,%d); queue=%v", qi, qv, ri, rv, queue)
			}
			if qi >= 0 {
				// Safety: recompute the causal check from first principles.
				for w := 0; w < qv; w++ {
					if !retired[w] && masks[w]&masks[qv] != 0 {
						t.Fatalf("admitted subnet %d while unfinished subnet %d shares layers %#x",
							qv, w, masks[w]&masks[qv])
					}
				}
				queue = append(queue[:qi], queue[qi+1:]...)
				inflight = append(inflight, qv)
				// Retire policy from the fuzz bytes: any in-flight subnet may
				// retire, in any order — out-of-order backwards are legal.
				if p := nextPolicy(); len(inflight) > 0 && p&1 == 1 {
					retire(int(p>>1) % len(inflight))
				}
				continue
			}
			// Nothing admissible. Liveness demands something is in flight.
			if len(inflight) == 0 {
				t.Fatalf("permanent stall: queue=%v with nothing in flight", queue)
			}
			retire(int(nextPolicy()>>1) % len(inflight))
		}
		if got := s.Frontier(); got != n {
			t.Fatalf("drained workload left frontier at %d, want %d", got, n)
		}
		if left := s.FinishedSeqs(); len(left) != 0 {
			t.Fatalf("drained workload left finished gaps %v", left)
		}
	})
}
