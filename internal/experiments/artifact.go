package experiments

import (
	"context"
	"fmt"

	"naspipe/internal/metrics"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// ArtifactCompare reproduces the artifact's Experiment 1: reproducible
// parallel training on single-GPU and four-GPU settings on search space
// NLP.c0, comparing all training-step outputs in full floating-point
// precision. Expected: every step's loss matches bitwise, and the final
// supernet weights are bitwise identical.
func ArtifactCompare(ctx context.Context, o Options) string {
	o = o.withDefaults()
	steps := 500
	if o.Quick {
		steps = 50
	}
	oo := o
	oo.NumericSubnets = steps
	sp := supernet.NLPc0

	single, err := oo.numericRun(ctx, sp, "naspipe", 1)
	if err != nil {
		return fmt.Sprintf("Artifact Experiment 1: ERROR: %v\n", err)
	}
	quad, err := oo.numericRun(ctx, sp, "naspipe", 4)
	if err != nil {
		return fmt.Sprintf("Artifact Experiment 1: ERROR: %v\n", err)
	}

	matches := 0
	for i := range single.Losses {
		if i < len(quad.Losses) && single.Losses[i] == quad.Losses[i] {
			matches++
		}
	}
	tb := metrics.NewTable("Artifact Experiment 1: reproducible training, 1 GPU vs 4 GPUs (NLP.c0 scaled)",
		"Check", "Result")
	tb.AddRow("training steps compared", steps)
	tb.AddRow("step outputs matching (full fp32 precision)", fmt.Sprintf("%d/%d", matches, steps))
	tb.AddRow("final weights bitwise equal", fmt.Sprintf("%v (checksums %016x / %016x)",
		single.Checksum == quad.Checksum, single.Checksum, quad.Checksum))
	tb.AddRow("bitwise loss series equal", fmt.Sprintf("%v", train.LossesBitwiseEqual(single.Losses, quad.Losses)))
	return tb.Render()
}

// ArtifactThroughput reproduces the artifact's Experiment 2: NASPipe
// training throughput on NLP.c0–c3 with four GPUs, expecting
// T(c0) > T(c1) > T(c2) > T(c3): larger spaces manifest fewer causal
// dependencies and pipeline better.
func ArtifactThroughput(ctx context.Context, o Options) string {
	o = o.withDefaults()
	spaces := []supernet.Space{supernet.NLPc0, supernet.NLPc1, supernet.NLPc2, supernet.NLPc3}
	tb := metrics.NewTable("Artifact Experiment 2: NASPipe throughput ordering on 4 GPUs",
		"Space", "Samples/s", "Subnets/hour", "Bubble")
	prev := -1.0
	ordered := true
	for _, sp := range spaces {
		res := runPerf(ctx, o, sp, "naspipe", 4, false)
		if res.Failed {
			tb.AddRow(sp.Name, "-", "-", "(failed)")
			ordered = false
			continue
		}
		if prev > 0 && res.SamplesPerSec >= prev {
			ordered = false
		}
		prev = res.SamplesPerSec
		tb.AddRow(sp.Name, fmt.Sprintf("%.0f", res.SamplesPerSec),
			fmt.Sprintf("%.0f", res.SubnetsPerHour), fmt.Sprintf("%.2f", res.BubbleRatio))
	}
	verdict := "T(c0) > T(c1) > T(c2) > T(c3): HOLDS"
	if !ordered {
		verdict = "ordering check: FAILED"
	}
	tb.AddNote(verdict)
	return tb.Render()
}
