package engine

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"naspipe/internal/cluster"
	"naspipe/internal/fault"
	"naspipe/internal/memctx"
	"naspipe/internal/metrics"
	"naspipe/internal/partition"
	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/task"
	"naspipe/internal/telemetry"
	"naspipe/internal/trace"
)

// Config describes one simulated training run.
type Config struct {
	Space      supernet.Space
	Spec       cluster.Spec
	Seed       uint64
	NumSubnets int

	// Subnets optionally injects an explicit ordered subnet stream
	// (e.g. a hybrid multi-space interleave) instead of SPOS-sampling
	// NumSubnets from the space. Sequence IDs must be 0..len-1.
	Subnets []supernet.Subnet

	// InflightLimit bounds the subnets admitted into the pipeline at
	// once (the paper keeps |L_q| under ~30). 0 means max(3·D, 12).
	InflightLimit int

	// RecordTrace enables parameter-access trace emission (needed by the
	// numeric replay plane; adds memory proportional to accesses).
	RecordTrace bool

	// BatchOverride forces the pipeline batch size instead of deriving it
	// from the memory model. 0 derives it.
	BatchOverride int

	// TimingJitter perturbs every task's compute duration by a
	// deterministic per-task factor in [1−j, 1+j], keyed by JitterSeed —
	// a model of running on a *different cluster* with different (but
	// still roughly deterministic) kernel timings. Definition 1 requires
	// the training result to survive this; the CSP schedule's per-layer
	// access order (and therefore the numeric result) is invariant under
	// any jitter, while its wall-clock timeline is not.
	TimingJitter float64
	JitterSeed   uint64

	// StageSpeeds models a heterogeneous cluster: every task on stage k
	// takes StageSpeeds[k]× its baseline compute time (1.0 = the paper's
	// testbed GPU; 2.0 = a straggler at half speed). Entries beyond the
	// pipeline depth are ignored and missing entries mean 1.0, so an
	// elastic resume at reduced depth keeps the surviving stages' speeds.
	// Like TimingJitter this perturbs timing only: the CSP schedule — and
	// with it the training result — is invariant under any speed
	// assignment, which the scenario conformance suite pins.
	StageSpeeds []float64

	// SimCacheFactor overrides the policy's declared cache provisioning
	// factor on the simulated plane (0 keeps the policy's traits). The
	// scenario compiler uses it so one declarative cache budget drives
	// both planes; the concurrent plane takes ConcurrentMem.CacheFactor.
	SimCacheFactor float64

	// ConcurrentMem configures the concurrent execution plane's per-stage
	// memory context (the prefetching layer cache and the Algorithm 3
	// predictor). The simulated plane ignores it — there the memory model
	// is declared by the policy's Traits. The zero value disables the
	// cache: every concurrent task runs with no memory context.
	ConcurrentMem MemPlaneConfig

	// Telemetry, when non-nil, receives the run's structured event
	// stream: task admission/start/preempt/resume/complete spans,
	// scheduler decisions, prefetch-cache traffic, and cross-stage
	// transfer flows, on both execution planes. Nil (the default)
	// disables telemetry entirely — the hot paths emit nothing and
	// allocate nothing. The simulated plane stamps events with simulated
	// nanoseconds; the concurrent plane with wall-clock offsets from the
	// bus epoch, so span-derived output (Result.Spans, timelines) wants a
	// bus constructed just before the run.
	Telemetry *telemetry.Bus

	// Faults, when non-nil and enabled, activates the deterministic
	// fault-injection plane on the concurrent executor: seed-driven stage
	// crashes at task boundaries, dropped/delayed/duplicated cross-stage
	// messages with bounded retry, and prefetch-copy failures surfaced as
	// cache misses. The simulated plane rejects it — its discrete-event
	// clock has no goroutines to crash.
	Faults *fault.Plan

	// FaultIncarnation is the restart epoch fault decisions are keyed by
	// (0 for a fresh run; resumes pass the checkpoint's). Injected
	// crashes re-roll per incarnation, so recovery terminates.
	FaultIncarnation int

	// Checkpoint, when non-nil, receives a consistency cut every time
	// stage 0's backward frontier advances: the global cursor (subnets
	// [0, cursor) fully retired) plus out-of-order finished seqs above
	// it. Concurrent plane only.
	Checkpoint fault.Recorder

	// SeqBase offsets every externally visible sequence ID (trace,
	// telemetry, fault decisions, checkpoint cuts) by a resume cursor:
	// the engine executes Subnets with local seqs 0..len-1 while the
	// outside world sees BaseSeq..BaseSeq+len-1. Used by Runner.Resume to
	// run the uncommitted suffix of an interrupted stream. Concurrent
	// plane only.
	SeqBase int

	// Probe, when non-nil, receives the run's live health state: per-stage
	// scheduler heads and task counters published at every task boundary,
	// plus the committed stage-0 frontier. The supervision plane's
	// watchdog polls it to distinguish slow progress from a genuine
	// stall. A probe may be reused across incarnations; RunConcurrent
	// re-attaches it at start. Concurrent plane only.
	Probe *RunProbe

	// Dist, when non-nil, runs only Dist.Stages of the pipeline in this
	// process and routes every cross-stage message through
	// Dist.Transport instead of direct channel sends — the distributed
	// execution plane (see dist.go). Concurrent plane only.
	Dist *DistConfig
}

// MemPlaneConfig is the concurrent plane's memory-context configuration.
// Prefetching moves data only, never scheduling decisions, so any setting
// leaves the canonical causal trace (Definition 1) untouched.
type MemPlaneConfig struct {
	// CacheFactor sizes each stage's GPU parameter cache as a multiple of
	// the stage's average subnet-partition footprint — the paper's
	// configuration is 3 (executing + evicting + prefetched subnet).
	// 0 disables the cache (and the predictor).
	CacheFactor float64
	// Predictor drives each stage's async prefetcher with Algorithm 3
	// forecasts and pending-backward carries. Requires CacheFactor > 0.
	Predictor bool
	// FetchMsScale converts modeled PCIe copy milliseconds into
	// wall-clock delay: 0 models instant copies (the default — stage
	// compute is itself only a scheduler yield), 1 plays them in real
	// time. Used by tests to force late-prefetch and stall paths.
	FetchMsScale float64
}

// Enabled reports whether the concurrent memory plane is active.
func (m MemPlaneConfig) Enabled() bool { return m.CacheFactor > 0 }

// ResolveSubnets returns the full explore stream this config denotes:
// the injected Subnets when present, otherwise the SPOS sample the
// engine would draw. Checkpoint/resume callers use it to reason about
// the whole stream (prefix checksums, suffix renumbering) outside the
// engine.
func (c Config) ResolveSubnets() []supernet.Subnet {
	c = c.withDefaults()
	if len(c.Subnets) > 0 {
		return c.Subnets
	}
	return supernet.Sample(c.Space, c.Seed, c.NumSubnets)
}

func (c Config) withDefaults() Config {
	if len(c.Subnets) > 0 {
		c.NumSubnets = len(c.Subnets)
	}
	if c.NumSubnets <= 0 {
		c.NumSubnets = 64
	}
	if c.InflightLimit <= 0 {
		c.InflightLimit = 3 * c.Spec.GPUs
		if c.InflightLimit < 12 {
			c.InflightLimit = 12
		}
	}
	return c
}

// StageSpeed returns stage k's compute-time multiplier (1.0 when the
// cluster is homogeneous or k is beyond the declared speeds).
func (c Config) StageSpeed(k int) float64 {
	if k >= 0 && k < len(c.StageSpeeds) {
		return c.StageSpeeds[k]
	}
	return 1
}

// validateTiming rejects timing-perturbation parameters that would make
// a run unschedulable rather than merely slower: non-positive stage
// speeds and negative cache overrides. Shared by both execution planes.
func (c Config) validateTiming() error {
	for k, v := range c.StageSpeeds {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("engine: StageSpeeds[%d] = %v; speeds must be positive and finite", k, v)
		}
	}
	if c.SimCacheFactor < 0 {
		return fmt.Errorf("engine: negative SimCacheFactor %v", c.SimCacheFactor)
	}
	return nil
}

// Result carries everything the paper's tables and figures report about
// one run.
type Result struct {
	Policy string
	Space  string
	D      int

	Failed     bool // the system could not run (parameters exceed GPU memory)
	FailReason string
	Deadlock   bool // scheduling stalled before completing (engine invariant violation)

	Batch          int
	TotalMs        float64
	Completed      int
	SamplesPerSec  float64
	SubnetsPerHour float64
	BubbleRatio    float64
	ALUTotal       float64 // summed utilization across GPUs, × one GPU
	GPUMemBytes    int64   // summed peak across GPUs
	GPUMemX        float64 // same, normalized to one GPU's capacity
	CPUMemBytes    int64   // pinned CPU storage for the supernet stash
	ExecMsAvg      float64 // per-subnet execution time, bubbles eliminated
	CacheHitRate   float64 // -1 when the system does not swap or saw no accesses (N/A)
	StallMs        float64 // total compute stalls waiting on swaps
	MirrorBytes    int64   // mirrored-parameter push traffic

	// DroppedPrefetches counts prefetches abandoned because cache
	// capacity was held by locked contexts (or, on the concurrent plane,
	// because a stage's prefetch queue was saturated) — the attributable
	// cause of otherwise-unexplained misses.
	DroppedPrefetches int

	CachedParamBytes int64 // resident parameter budget across stages ("Para.")
	SupernetBytes    int64 // whole-supernet parameter size

	StageBusyMs  []float64 // per-stage compute time (diagnostics)
	StageStallMs []float64 // per-stage swap stalls (diagnostics)
	AvgInflight  float64   // time-averaged subnets in flight (diagnostics)

	// Spans records every task's admission and completion (only when
	// Config.RecordTrace is set), for timeline rendering (Figure 1).
	Spans []TaskSpan

	Trace *trace.Trace // nil unless Config.RecordTrace

	// ObservedTrace is filled only by the concurrent execution plane
	// (RunConcurrent): the raw parameter-access interleaving as the stage
	// goroutines actually emitted it, wall-clock-nondeterministic across
	// runs. Trace above then holds the canonical causal order, which CSP
	// guarantees is the deterministic per-layer-equivalent of this one;
	// RunConcurrent fails loudly if the guarantee was violated.
	ObservedTrace *trace.Trace

	// Contention carries per-stage scheduling-pressure counters from the
	// concurrent execution plane; nil on the simulated plane.
	Contention []metrics.StageContention

	// CacheStats carries per-stage memory-context counters from the
	// concurrent execution plane's prefetching layer cache; nil when the
	// cache is disabled or on the simulated plane (which reports the
	// aggregate fields above instead).
	CacheStats []metrics.StageCache

	// BaseSeq echoes Config.SeqBase: the global sequence ID of the run's
	// first subnet. Trace and telemetry seqs start here; Completed counts
	// subnets of this run only.
	BaseSeq int
}

// TaskSpan is one task's timeline extent on its stage. Start is the
// admission time (context acquire begins), End the completion; the task
// may have been preempted in between by backward micro-tasks.
type TaskSpan struct {
	Task    task.Task
	StartMs float64
	EndMs   float64
	StallMs float64
}

// event kinds, processed in (time, emission order).
type evKind int

const (
	evFwdArrive evKind = iota
	evBwdArrive
	evMicroDone
)

type event struct {
	time   float64
	order  uint64
	kind   evKind
	stage  int
	subnet int
	tkind  task.Kind
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].order < h[j].order
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// execState is one admitted task being executed as a sequence of
// per-layer micro-tasks. Real stages run one CUDA kernel per layer, so a
// higher-priority task (a backward) preempts a running forward at the
// next layer boundary rather than waiting out the whole stage pass.
type execState struct {
	t           task.Task
	ids         []supernet.LayerID
	remaining   []float64 // per-layer compute cost at the run batch, in order
	next        int       // index of the next micro-task
	availableAt float64   // context Acquire completion
	computeMs   float64   // accumulated compute (for metrics)
	stallSeen   bool
	stallMs     float64
	startedAt   float64

	// Telemetry span state (untouched when Config.Telemetry is nil): a
	// span opens at the first dispatched micro-task, splits at preemption
	// boundaries, and closes at completion.
	spanOpen    bool
	everStarted bool
}

func (x *execState) done() bool { return x.next >= len(x.remaining) }

type stageState struct {
	running  bool // a micro-task is in flight
	fwdQ     task.Queue
	bwdReady []int
	active   []*execState // admitted tasks; at most one forward
	busyMs   float64
	stallMs  float64
	actBytes int64 // activation footprint at the chosen batch

	// cur is the exec whose telemetry span is currently open on this
	// stage's compute worker (nil when telemetry is disabled or idle).
	cur *execState
}

func (st *stageState) hasForwardActive() bool {
	for _, x := range st.active {
		if x.t.Kind == task.Forward {
			return true
		}
	}
	return false
}

// Engine runs one simulation.
type Engine struct {
	cfg    Config
	policy Policy
	traits Traits
	w      *World

	events   eventHeap
	evOrder  uint64
	now      float64
	stages   []*stageState
	mem      []*memctx.Manager
	batch    int
	refBatch int

	// per-subnet per-stage task durations (compute+stall) for the exec
	// metric.
	fwdDur, bwdDur [][]float64

	started      int
	retrieved    int
	completed    int
	inflightArea float64 // ∫ inflight dt
	lastInfT     float64
	tr           *trace.Trace
	spans        []TaskSpan
	mirrorB      int64
	tel          *telemetry.Bus // nil = telemetry disabled
}

// Run simulates the policy on the config and returns the result. Invalid
// configurations (bad cluster spec, malformed injected subnet streams)
// surface as errors. A Result with Failed set is not an error: it means a
// valid configuration that this system cannot run (e.g. parameters exceed
// GPU memory), which the paper's tables report as a data point.
func Run(cfg Config, policy Policy) (Result, error) {
	return RunContext(context.Background(), cfg, policy)
}

// ctxCheckInterval is how many simulator events pass between cooperative
// cancellation checks in RunContext's event loop.
const ctxCheckInterval = 1024

// RunContext is Run with cooperative cancellation: the event loop checks
// ctx between simulated events and, when cancelled, returns the partial
// Result accumulated so far together with ctx.Err(). The partial result
// has Deadlock set (the run did not complete) and Completed reflecting
// the subnets that finished before cancellation.
func RunContext(ctx context.Context, cfg Config, policy Policy) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, fmt.Errorf("engine: invalid cluster spec: %w", err)
	}
	if cfg.Faults.Enabled() {
		return Result{}, fmt.Errorf("engine: fault injection targets the concurrent plane; the simulated clock has no goroutines to crash")
	}
	if cfg.Checkpoint != nil || cfg.SeqBase != 0 {
		return Result{}, fmt.Errorf("engine: checkpoint/resume (Checkpoint, SeqBase) is a concurrent-plane feature")
	}
	if cfg.Probe != nil {
		return Result{}, fmt.Errorf("engine: the health probe (Probe) is a concurrent-plane feature; the simulated clock has no live run to watch")
	}
	if err := cfg.validateTiming(); err != nil {
		return Result{}, err
	}
	traits := policy.Traits()
	if cfg.SimCacheFactor > 0 {
		traits.CacheFactor = cfg.SimCacheFactor
	}
	e := &Engine{cfg: cfg, policy: policy, traits: traits, tel: cfg.Telemetry}
	if err := e.buildWorld(); err != nil {
		return Result{}, err
	}
	res := Result{
		Policy: e.traits.Name, Space: cfg.Space.Name, D: cfg.Spec.GPUs,
		SupernetBytes: e.w.Net.TotalParamBytes(),
	}
	if failReason := e.sizeBatch(&res); failReason != "" {
		res.Failed = true
		res.FailReason = failReason
		return res, nil
	}
	e.setup()
	e.loop(ctx)
	e.finish(&res)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

func (e *Engine) buildWorld() error {
	w, err := NewWorld(e.cfg, e.traits.Partition)
	if err != nil {
		return err
	}
	e.w = w
	return nil
}

// NewWorld validates the config's subnet stream and builds the run
// context shared by the simulated and concurrent execution planes.
func NewWorld(cfg Config, mode PartitionMode) (*World, error) {
	net := supernet.Build(cfg.Space)
	subs := cfg.Subnets
	if len(subs) == 0 {
		subs = supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
	} else {
		for i, sub := range subs {
			if sub.Seq != i {
				return nil, fmt.Errorf("engine: injected subnet stream has gapped sequence IDs: position %d carries seq %d", i, sub.Seq)
			}
			if len(sub.Choices) != cfg.Space.Blocks {
				return nil, fmt.Errorf("engine: injected subnet %d has %d choices, space %s has %d blocks",
					i, len(sub.Choices), cfg.Space.Name, cfg.Space.Blocks)
			}
		}
	}
	d := cfg.Spec.GPUs
	home := partition.Static(net, d)
	parts := make([]partition.Partition, len(subs))
	for i, sub := range subs {
		if mode == PartitionBalanced {
			parts[i] = partition.BalancedForSubnet(net, sub, d)
		} else {
			parts[i] = home
		}
	}
	w := &World{
		Space: cfg.Space, Net: net, Spec: cfg.Spec, D: d,
		Subnets: subs, Home: home, Parts: parts,
		SeqBase: cfg.SeqBase,
	}
	w.BuildIndexes()
	return w, nil
}

// stageBytes returns the parameter footprint of subnet seq's stage-k
// partition.
func (e *Engine) stageBytes(seq, k int) int64 {
	var total int64
	for _, id := range e.w.stageIDs[seq][k] {
		total += e.w.Net.Meta[id].ParamBytes
	}
	return total
}

// sizeBatch derives the pipeline batch from the memory model and fills
// the memory-related result columns. It returns a non-empty reason when
// the configuration cannot run at all.
func (e *Engine) sizeBatch(res *Result) string {
	w := e.w
	d := w.D
	e.refBatch = cluster.RefBatch(w.Space.Domain)
	stash := e.traits.ActStashFactor
	if stash <= 0 {
		stash = 1
	}

	resident := make([]int64, d)
	layersIn := make([]float64, d)
	if e.traits.CacheFactor == 0 {
		// Whole supernet partition resident per stage (home partition).
		for k := 0; k < d; k++ {
			lo, hi := w.Home.Blocks(k)
			var bytes int64
			for b := lo; b < hi; b++ {
				for c := 0; c < w.Space.Choices; c++ {
					bytes += w.Net.Layer(b, c).ParamBytes
				}
			}
			resident[k] = bytes
			layersIn[k] = float64(hi - lo)
		}
	} else {
		// For batch sizing only the steady-state executing context plus a
		// small in-flight margin competes with activations: NASPipe's
		// memory-limit check delays prefetch copies under pressure
		// instead of shrinking the batch, so transient cache overage
		// (up to CacheFactor×) does not consume activation budget.
		budget := e.traits.CacheFactor
		if budget > 1.2 {
			budget = 1.2
		}
		// The budget is provisioned from the average subnet partition under
		// the supernet's *home* placement — a profile-time constant, so
		// systems with different execution partitions (balanced vs static)
		// still provision (and batch) identically, as in Table 2 where
		// NASPipe and VPipe share the same batch column.
		for k := 0; k < d; k++ {
			var sum int64
			var blocks float64
			lo, hi := w.Home.Blocks(k)
			for i, sub := range w.Subnets {
				for b := lo; b < hi; b++ {
					sum += w.Net.Layer(b, sub.Choices[b]).ParamBytes
				}
				plo, phi := w.Parts[i].Blocks(k)
				blocks += float64(phi - plo)
			}
			avg := float64(sum) / float64(len(w.Subnets))
			resident[k] = int64(budget * avg)
			layersIn[k] = blocks / float64(len(w.Subnets))
		}
	}

	batch := e.refBatch
	for k := 0; k < d; k++ {
		nl := int(math.Ceil(layersIn[k] * stash))
		if nl < 1 {
			nl = 1
		}
		bk := e.cfg.Spec.MaxBatch(resident[k], nl, w.Space.Domain)
		if bk == 0 {
			return fmt.Sprintf("stage %d parameters (%d bytes) exceed GPU memory", k, resident[k])
		}
		if bk < batch {
			batch = bk
		}
	}
	if e.cfg.BatchOverride > 0 {
		batch = e.cfg.BatchOverride
	}
	e.batch = batch
	res.Batch = batch

	// Report the full cache budget (CacheFactor×) as the resident
	// parameter figure — the paper's "Para." column counts the whole
	// cache (current + previous + prefetched subnet).
	var cached int64
	for k := 0; k < d; k++ {
		if e.traits.CacheFactor > 0 {
			cached += int64(float64(resident[k]) * e.traits.CacheFactor / minF(e.traits.CacheFactor, 1.2))
		} else {
			cached += resident[k]
		}
	}
	res.CachedParamBytes = cached
	if e.traits.CacheFactor > 0 {
		res.CPUMemBytes = w.Net.TotalParamBytes()
	}
	// Peak GPU memory: resident parameters plus activation footprint.
	var gpuTotal int64
	e.stages = make([]*stageState, d)
	for k := 0; k < d; k++ {
		act := int64(float64(cluster.ActBytesPerSample(w.Space.Domain))*layersIn[k]*stash) * int64(batch)
		use := resident[k] + act
		if use > e.cfg.Spec.GPUMemBytes {
			use = e.cfg.Spec.GPUMemBytes
		}
		gpuTotal += use
		e.stages[k] = &stageState{actBytes: act}
	}
	res.GPUMemBytes = gpuTotal
	res.GPUMemX = float64(gpuTotal) / float64(e.cfg.Spec.GPUMemBytes)
	return ""
}

func (e *Engine) setup() {
	w := e.w
	d := w.D
	e.mem = make([]*memctx.Manager, d)
	for k := 0; k < d; k++ {
		var capacity int64 = -1
		if e.traits.CacheFactor > 0 {
			var sum int64
			for i := range w.Subnets {
				sum += e.stageBytes(i, k)
			}
			capacity = int64(e.traits.CacheFactor * float64(sum) / float64(len(w.Subnets)))
		}
		m := memctx.New(capacity, e.cfg.Spec.PCIeBytesPerMs)
		if e.traits.CacheFactor == 0 {
			// Whole context resident: preload every candidate layer of
			// the stage's home blocks.
			lo, hi := w.Home.Blocks(k)
			var ids []supernet.LayerID
			for b := lo; b < hi; b++ {
				for c := 0; c < w.Space.Choices; c++ {
					ids = append(ids, w.Space.ID(b, c))
				}
			}
			m.Preload(ids, func(id supernet.LayerID) int64 { return w.Net.Meta[id].ParamBytes })
		}
		e.mem[k] = m
	}
	e.fwdDur = make([][]float64, len(w.Subnets))
	e.bwdDur = make([][]float64, len(w.Subnets))
	for i := range w.Subnets {
		e.fwdDur[i] = make([]float64, d)
		e.bwdDur[i] = make([]float64, d)
	}
	if e.cfg.RecordTrace {
		e.tr = &trace.Trace{}
	}
	e.policy.Init(w)
	e.refill()
	e.wakeAll()
}

// refill keeps stage 0's forward queue stocked with retrieved subnets,
// bounded by the inflight window.
func (e *Engine) refill() {
	st := e.stages[0]
	for e.retrieved < len(e.w.Subnets) &&
		st.fwdQ.Len()+(e.started-e.completed) < e.cfg.InflightLimit {
		st.fwdQ.Push(e.retrieved)
		e.retrieved++
	}
}

func (e *Engine) push(ev event) {
	ev.order = e.evOrder
	e.evOrder++
	heap.Push(&e.events, ev)
}

func (e *Engine) loop(ctx context.Context) {
	guard := 0
	maxEvents := len(e.w.Subnets)*e.w.D*(2*e.w.Space.Blocks+40) + 1000
	for e.events.Len() > 0 {
		guard++
		if guard > maxEvents {
			return // deadlock guard; finish() flags incompleteness
		}
		if guard%ctxCheckInterval == 0 && ctx.Err() != nil {
			return // cancelled; finish() reports the partial run
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.time
		switch ev.kind {
		case evFwdArrive:
			st := e.stages[ev.stage]
			st.fwdQ.Push(ev.subnet)
			e.telFlow(telemetry.PhaseFlowEnd, telemetry.OpTransferRecv, e.now, ev.stage, ev.subnet, task.Forward, ev.stage-1)
			e.wake(ev.stage)
		case evBwdArrive:
			st := e.stages[ev.stage]
			st.bwdReady = append(st.bwdReady, ev.subnet)
			e.telFlow(telemetry.PhaseFlowEnd, telemetry.OpTransferRecv, e.now, ev.stage, ev.subnet, task.Backward, ev.stage+1)
			if e.traits.PrefetchOnArrival && e.traits.CacheFactor > 0 {
				e.prefetchCtx(ev.stage, ev.subnet)
			}
			e.wake(ev.stage)
		case evMicroDone:
			e.microDone(ev)
		}
	}
}

func (e *Engine) prefetchCtx(stage, seq int) {
	ids := e.w.stageIDs[seq][stage]
	e.telInstant(telemetry.OpPrefetchRequest, stage, telemetry.WorkerMem, int64(len(ids)))
	for _, id := range ids {
		e.mem[stage].Prefetch(id, e.w.Net.Meta[id].ParamBytes, e.now)
	}
}

func (e *Engine) wakeAll() {
	for k := 0; k < e.w.D; k++ {
		e.wake(k)
	}
}

// wake admits ready tasks to the stage's active set and, if no micro-task
// is in flight, dispatches the next one.
func (e *Engine) wake(k int) {
	st := e.stages[k]
	// Admit every backward the policy releases (they preempt at the next
	// micro boundary), then at most one forward if none is active.
	for {
		idx := e.policy.SelectBackward(k, st.bwdReady, e.now)
		if idx < 0 {
			break
		}
		seq := st.bwdReady[idx]
		st.bwdReady = append(st.bwdReady[:idx], st.bwdReady[idx+1:]...)
		e.telInstant(telemetry.OpSchedAdmit, k, telemetry.WorkerStage, int64(seq))
		if e.traits.UsePredictor {
			for _, p := range e.policy.PredictBackward(k, st.fwdQ.IDs(), seq, e.now) {
				e.prefetchCtx(k, p)
			}
		}
		e.admit(k, task.Task{Subnet: seq, Stage: k, Kind: task.Backward})
	}
	if !st.hasForwardActive() {
		idx := e.policy.SelectForward(k, st.fwdQ.IDs(), e.now)
		if idx < 0 && st.fwdQ.Len() > 0 && e.tel != nil {
			// CSP held the queued forwards back (Algorithm 2): record the
			// delayed head so the trace attributes the bubble.
			e.telInstant(telemetry.OpSchedDelay, k, telemetry.WorkerStage, int64(st.fwdQ.IDs()[0]))
		}
		if idx >= 0 {
			seq := st.fwdQ.Pop(idx)
			e.telInstant(telemetry.OpSchedAdmit, k, telemetry.WorkerStage, int64(seq))
			if k == 0 {
				e.inflightArea += float64(e.started-e.completed) * (e.now - e.lastInfT)
				e.lastInfT = e.now
				e.started++
				e.refill()
			}
			if e.traits.UsePredictor {
				for _, p := range e.policy.PredictForward(k, st.fwdQ.IDs(), seq, e.now) {
					e.prefetchCtx(k, p)
				}
			}
			e.admit(k, task.Task{Subnet: seq, Stage: k, Kind: task.Forward})
		}
	}
	e.dispatch(k)
}

// dispatch starts the highest-priority pending micro-task if the stage's
// compute unit is free. Backwards run before forwards; among backwards,
// the lowest subnet sequence wins (the §3.2 priority).
func (e *Engine) dispatch(k int) {
	st := e.stages[k]
	if st.running {
		return
	}
	var pick *execState
	for _, x := range st.active {
		if x.done() || x.availableAt > e.now {
			continue
		}
		if pick == nil {
			pick = x
			continue
		}
		if x.t.Kind == task.Backward && (pick.t.Kind == task.Forward || x.t.Subnet < pick.t.Subnet) {
			pick = x
		}
	}
	if pick == nil {
		// Nothing runnable now; if contexts are still arriving, schedule a
		// wake at the earliest availability.
		var soonest float64 = -1
		for _, x := range st.active {
			if !x.done() && x.availableAt > e.now {
				if soonest < 0 || x.availableAt < soonest {
					soonest = x.availableAt
				}
			}
		}
		if soonest >= 0 {
			e.push(event{time: soonest, kind: evMicroDone, stage: k, subnet: -1})
		}
		return
	}
	e.telSpanSwitch(st, pick)
	if !pick.stallSeen {
		pick.stallSeen = true
		st.stallMs += pick.stallMs
	}
	dur := pick.remaining[pick.next]
	pick.next++
	pick.computeMs += dur
	st.busyMs += dur
	st.running = true
	e.push(event{time: e.now + dur, kind: evMicroDone, stage: k, subnet: pick.t.Subnet, tkind: pick.t.Kind})
}

// admit acquires a task's context and queues its micro-tasks.
func (e *Engine) admit(k int, t task.Task) {
	st := e.stages[k]
	ids := e.w.stageIDs[t.Subnet][k]
	// Cross-stage context notification (§3.3): the moment a task starts,
	// the neighbouring stage that will process this subnet next learns
	// about it and prefetches the context — forward contexts flow
	// downstream, backward contexts upstream, hiding the swap behind this
	// task's compute plus the transfer.
	if e.traits.UsePredictor && e.traits.CacheFactor > 0 {
		if t.Kind == task.Forward && k < e.w.D-1 {
			e.prefetchCtx(k+1, t.Subnet)
		} else if t.Kind == task.Backward && k > 0 {
			e.prefetchCtx(k-1, t.Subnet)
		}
	}
	readyAt := e.mem[k].Acquire(ids, func(id supernet.LayerID) int64 {
		return e.w.Net.Meta[id].ParamBytes
	}, e.now)
	if e.tel != nil {
		e.telTask(telemetry.OpTaskAdmit, telemetry.PhaseInstant, t)
		if readyAt > e.now {
			// Context swap-in in progress: a stall span from admission to
			// context arrival, Arg carrying the duration in nanoseconds.
			ev := telemetry.Event{
				Op: telemetry.OpCacheStall, Phase: telemetry.PhaseBegin,
				Stage: int32(k), Worker: telemetry.WorkerStage,
				Subnet: int32(t.Subnet), Kind: telKind(t.Kind),
				Arg: simNs(readyAt - e.now),
			}
			e.tel.EmitAt(simNs(e.now), ev)
			ev.Phase = telemetry.PhaseEnd
			e.tel.EmitAt(simNs(readyAt), ev)
		}
	}
	x := &execState{t: t, ids: ids, availableAt: readyAt, stallMs: readyAt - e.now, startedAt: e.now}
	jitter := e.cfg.StageSpeed(k)
	if e.cfg.TimingJitter > 0 {
		r := rng.Labeled(e.cfg.JitterSeed, fmt.Sprintf("jitter/%d/%d/%d", t.Subnet, t.Stage, int(t.Kind)))
		jitter *= 1 + e.cfg.TimingJitter*(2*r.Float64()-1)
	}
	for _, id := range ids {
		m := e.w.Net.Meta[id]
		x.remaining = append(x.remaining, jitter*e.cfg.Spec.ComputeMs(m.CostMs(t.Kind == task.Backward), e.batch, e.refBatch))
	}
	if len(x.remaining) == 0 {
		// An empty stage partition still relays activations; charge a
		// token cost so the pipeline stays well-ordered.
		x.remaining = []float64{e.cfg.Spec.ComputeMs(0.01, e.batch, e.refBatch)}
	}
	if t.Kind == task.Forward && e.tr != nil {
		for _, id := range ids {
			e.tr.Append(readyAt, id, t.Subnet, k, trace.Read)
		}
	}
	st.active = append(st.active, x)
	if readyAt > e.now {
		// Context still swapping in: make sure the stage re-evaluates when
		// it lands even if nothing else is runnable.
		e.push(event{time: readyAt, kind: evMicroDone, stage: k, subnet: -1})
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// microDone advances the stage after a micro-task (or a context-arrival
// wakeup, subnet == -1) and completes tasks whose layers are exhausted.
func (e *Engine) microDone(ev event) {
	k := ev.stage
	st := e.stages[k]
	if ev.subnet >= 0 {
		st.running = false
	}
	// Complete any finished execs.
	kept := st.active[:0]
	var completed []*execState
	for _, x := range st.active {
		if x.done() {
			completed = append(completed, x)
		} else {
			kept = append(kept, x)
		}
	}
	st.active = kept
	for _, x := range completed {
		e.completeTask(x)
	}
	e.wake(k)
}

// completeTask performs the end-of-task protocol: releases and (for
// backwards) evicts the context, sends the activation/gradient message,
// emits trace WRITEs, and notifies the policy.
func (e *Engine) completeTask(x *execState) {
	t := x.t
	k := t.Stage
	seq := t.Subnet
	ids := x.ids
	w := e.w
	e.mem[k].Release(ids, e.now)
	if e.tr != nil {
		e.spans = append(e.spans, TaskSpan{Task: t, StartMs: x.startedAt, EndMs: e.now, StallMs: x.stallMs})
	}
	if e.tel != nil {
		if x.spanOpen {
			e.telTask(telemetry.OpTaskComplete, telemetry.PhaseEnd, t)
			x.spanOpen = false
		}
		if e.stages[k].cur == x {
			e.stages[k].cur = nil
		}
	}
	msgBytes := int64(e.batch) * cluster.SampleBytes(w.Space.Domain)

	if t.Kind == task.Forward {
		e.fwdDur[seq][k] = x.computeMs + x.stallMs
		e.policy.OnForwardDone(k, seq, e.now)
		if k < w.D-1 {
			e.telFlow(telemetry.PhaseFlowBegin, telemetry.OpTransferSend, e.now, k, seq, task.Forward, k)
			e.push(event{time: e.now + e.cfg.Spec.CommMs(k, k+1, msgBytes),
				kind: evFwdArrive, stage: k + 1, subnet: seq})
		} else {
			// Loss computed: the backward is immediately ready locally.
			e.stages[k].bwdReady = append(e.stages[k].bwdReady, seq)
		}
		return
	}

	// Backward done: the WRITE access for this stage's layers.
	e.bwdDur[seq][k] = x.computeMs + x.stallMs
	if e.tr != nil {
		for _, id := range ids {
			e.tr.Append(e.now, id, seq, k, trace.Write)
		}
	}
	// Mirror push accounting: layers executing off their home stage push
	// updated parameters to the home copy (§4.2).
	lo, hi := w.Parts[seq].Blocks(k)
	for b := lo; b < hi; b++ {
		if w.Home.StageOf(b) != k {
			e.mirrorB += w.Net.Meta[w.Space.ID(b, w.Subnets[seq].Choices[b])].ParamBytes
		}
	}
	e.policy.OnBackwardDone(k, seq, e.now)
	if e.traits.CacheFactor > 0 {
		e.mem[k].Evict(ids, e.now)
	}
	if k > 0 {
		e.telFlow(telemetry.PhaseFlowBegin, telemetry.OpTransferSend, e.now, k, seq, task.Backward, k)
		e.push(event{time: e.now + e.cfg.Spec.CommMs(k, k-1, msgBytes),
			kind: evBwdArrive, stage: k - 1, subnet: seq})
	} else {
		e.inflightArea += float64(e.started-e.completed) * (e.now - e.lastInfT)
		e.lastInfT = e.now
		e.completed++
		e.refill()
	}
	// A completed WRITE may unblock forwards on any stage.
	e.wakeAll()
}

func (e *Engine) finish(res *Result) {
	w := e.w
	res.Completed = e.completed
	res.Deadlock = e.completed < len(w.Subnets)
	res.TotalMs = e.now
	res.Trace = e.tr
	res.Spans = e.spans
	res.MirrorBytes = e.mirrorB
	if e.now <= 0 {
		return
	}
	var busy, stall float64
	var hits, misses int
	res.StageBusyMs = make([]float64, w.D)
	res.StageStallMs = make([]float64, w.D)
	for k := 0; k < w.D; k++ {
		busy += e.stages[k].busyMs
		stall += e.stages[k].stallMs
		res.StageBusyMs[k] = e.stages[k].busyMs
		res.StageStallMs[k] = e.stages[k].stallMs
		ms := e.mem[k].Stats()
		hits += ms.Hits
		misses += ms.Misses
		res.DroppedPrefetches += ms.DroppedPrefetches
	}
	res.StallMs = stall
	res.AvgInflight = e.inflightArea / e.now
	res.BubbleRatio = 1 - busy/(float64(w.D)*e.now)
	eff := e.cfg.Spec.EfficiencyFactor(e.batch, e.refBatch)
	res.ALUTotal = busy / e.now * eff * e.cfg.Spec.MaxALU
	res.SamplesPerSec = float64(e.completed*e.batch) / (e.now / 1000)
	res.SubnetsPerHour = float64(e.completed) / (e.now / 3.6e6)
	if e.traits.CacheFactor > 0 && hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	} else {
		// No swapping, or a swap system whose stages never accessed the
		// cache (idle/degenerate run): N/A, not a perfect or zero rate.
		res.CacheHitRate = -1
	}
	var execSum float64
	for i := 0; i < e.completed; i++ {
		var maxF, maxB float64
		for k := 0; k < w.D; k++ {
			if e.fwdDur[i][k] > maxF {
				maxF = e.fwdDur[i][k]
			}
			if e.bwdDur[i][k] > maxB {
				maxB = e.bwdDur[i][k]
			}
		}
		execSum += float64(w.D) * (maxF + maxB)
	}
	if e.completed > 0 {
		res.ExecMsAvg = execSum / float64(e.completed)
	}
}
