// Command naspipe-train runs one pipeline supernet-training simulation
// and reports its metrics: throughput, bubble ratio, GPU utilization,
// cache hit rate, and memory footprints.
//
// Usage:
//
//	naspipe-train -space NLP.c1 -policy naspipe -gpus 8 -subnets 240
//	naspipe-train -space NLP.c1 -policy gpipe   # compare a baseline
//	naspipe-train -trace-out run.json           # Chrome trace (simulated time)
//	naspipe-train -debug-addr :6060             # pprof + live counters
//
// Fault injection and crash-consistent checkpoint/resume run on the
// concurrent (goroutine-per-stage) plane, selected automatically when
// any of these flags is given:
//
//	naspipe-train -faults "seed=7,drop=0.1" -checkpoint run.ckpt
//	naspipe-train -checkpoint run.ckpt -resume      # continue after a crash
//	naspipe-train -faults "seed=7,crash=0.02" -checkpoint run.ckpt -supervise
//
// With -supervise the supervision plane catches crashes and
// watchdog-diagnosed stalls in-process and resumes from the latest
// checkpoint — no operator intervention, no process restarts; -elastic N
// additionally halves the pipeline depth after N consecutive incidents
// on one stage. SIGINT/SIGTERM interrupt gracefully: the committed
// frontier is already checkpointed, so the process exits resumable.
//
// Exit codes (the contract CI and operators rely on):
//
//	0 — run complete (and verified where applicable)
//	1 — run or verification failure, including supervisor give-up
//	2 — usage error
//	3 — resumable interruption: injected crash without -supervise, or
//	    SIGINT/SIGTERM with a valid checkpoint; rerun with -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"naspipe"
	"naspipe/internal/telemetry"
)

func main() {
	supDef := naspipe.DefaultSuperviseConfig()
	var (
		space     = flag.String("space", "NLP.c1", "search space (Table 1 name)")
		policy    = flag.String("policy", "naspipe", "scheduling policy: "+strings.Join(naspipe.PolicyNames(), ", "))
		gpus      = flag.Int("gpus", 8, "GPU count (pipeline depth)")
		subnets   = flag.Int("subnets", 240, "subnets to train")
		seed      = flag.Uint64("seed", 42, "exploration seed")
		window    = flag.Int("window", 48, "pipeline admission window")
		saveTr    = flag.String("save-trace", "", "write the parameter-access trace record to this file for naspipe-replay")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON of the run, stamped in simulated time (load in Perfetto / chrome://tracing)")
		eventsOut = flag.String("events-out", "", "write the raw telemetry stream as JSONL (inspect with naspipe-replay -events)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/telemetry on this address for the process lifetime")
		progress  = flag.Duration("progress", 0, "print a live counter line at this interval (e.g. 200ms)")
		faultSpec = flag.String("faults", "", "deterministic fault plan for the concurrent plane, e.g. \"seed=7,drop=0.1,crashat=2:9:F\"")
		ckptPath  = flag.String("checkpoint", "", "persist crash-consistent checkpoints to this file (concurrent plane)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint instead of starting fresh")

		supervised   = flag.Bool("supervise", false, "supervise the run: auto-resume crashes and watchdog-diagnosed stalls in-process (requires -checkpoint)")
		stallTimeout = flag.Duration("stall-timeout", supDef.Watchdog.StallAfter, "supervised watchdog: declare a stall after this long without frontier or task progress")
		maxRestarts  = flag.Int("max-restarts", supDef.MaxRestarts, "supervised retry budget across the whole run")
		elasticAfter = flag.Int("elastic", 0, "supervised elastic recovery: halve the pipeline depth after N consecutive incidents on one stage (0 = off)")
	)
	flag.Parse()

	sp, err := naspipe.SpaceByName(*space)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *faultSpec != "" || *ckptPath != "" || *resume || *supervised {
		os.Exit(concurrentFaultRun(faultRunOpts{
			space: sp, policy: *policy, gpus: *gpus, subnets: *subnets, seed: *seed,
			faultSpec: *faultSpec, ckptPath: *ckptPath, resume: *resume,
			supervised: *supervised, stallTimeout: *stallTimeout,
			maxRestarts: *maxRestarts, elasticAfter: *elasticAfter,
			eventsOut: *eventsOut,
		}))
	}
	var bus *naspipe.TelemetryBus
	if *traceOut != "" || *eventsOut != "" || *debugAddr != "" || *progress > 0 {
		bus = naspipe.NewTelemetryBus(0)
	}
	if *debugAddr != "" {
		addr, shutdown, err := telemetry.ServeDebug(*debugAddr, bus)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ (pprof, vars, telemetry)\n", addr)
	}
	stopProgress := telemetry.StartProgress(os.Stderr, bus, *progress)
	res, err := naspipe.RunPolicy(naspipe.Config{
		Space: sp, Spec: naspipe.DefaultCluster(*gpus),
		Seed: *seed, NumSubnets: *subnets, InflightLimit: *window,
		RecordTrace: *saveTr != "",
		Telemetry:   bus,
	}, *policy)
	stopProgress()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if res.Failed {
		fmt.Printf("%s cannot run %s on %d GPUs: %s\n", res.Policy, sp.Name, *gpus, res.FailReason)
		os.Exit(1)
	}

	fmt.Printf("system:            %s (%s on %d GPUs, reproducible=%v)\n",
		res.Policy, sp.Name, *gpus, mustPolicyReproducible(*policy))
	fmt.Printf("subnets trained:   %d in %.1f simulated seconds\n", res.Completed, res.TotalMs/1000)
	fmt.Printf("pipeline batch:    %d samples\n", res.Batch)
	fmt.Printf("throughput:        %.0f samples/s (%.0f subnets/hour)\n", res.SamplesPerSec, res.SubnetsPerHour)
	fmt.Printf("bubble ratio:      %.2f\n", res.BubbleRatio)
	fmt.Printf("total GPU ALU:     %.2fx of one GPU\n", res.ALUTotal)
	fmt.Printf("avg subnet exec:   %.2f s (bubble eliminated)\n", res.ExecMsAvg/1000)
	if res.CacheHitRate >= 0 {
		fmt.Printf("cache hit rate:    %.1f%%\n", 100*res.CacheHitRate)
		fmt.Printf("CPU (pinned) mem:  %.1f GB for the supernet stash\n", float64(res.CPUMemBytes)/(1<<30))
	} else {
		fmt.Printf("cache hit rate:    n/a (whole context resident in GPU)\n")
	}
	fmt.Printf("GPU memory:        %.1fx of one GPU across the cluster\n", res.GPUMemX)
	if res.MirrorBytes > 0 {
		fmt.Printf("mirror pushes:     %.1f GB of parameter updates\n", float64(res.MirrorBytes)/(1<<30))
	}
	if *saveTr != "" {
		rec := naspipe.NewTraceRecord(sp, *policy, *gpus, *seed, res.Completed, res.Trace)
		f, err := os.Create(*saveTr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := rec.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("trace record:      %s (%d access events; replay with naspipe-replay -trace %s)\n",
			*saveTr, res.Trace.Len(), *saveTr)
	}
	if bus != nil {
		fmt.Printf("telemetry:         %s\n", bus.Snapshot().String())
		lines, err := telemetry.ExportFiles(bus, *traceOut, *eventsOut)
		for _, l := range lines {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// faultRunOpts collects the concurrent-plane run options (fault
// injection, checkpointing, supervision).
type faultRunOpts struct {
	space         naspipe.Space
	policy        string
	gpus, subnets int
	seed          uint64
	faultSpec     string
	ckptPath      string
	resume        bool

	supervised   bool
	stallTimeout time.Duration
	maxRestarts  int
	elasticAfter int

	eventsOut string
}

// concurrentFaultRun routes a fault-injected, checkpointed, or
// supervised run to the concurrent (goroutine-per-stage) plane — the
// simulated clock has no goroutines to crash. Returns the process exit
// code per the contract in the package comment.
func concurrentFaultRun(o faultRunOpts) int {
	if o.policy != "naspipe" {
		fmt.Fprintf(os.Stderr, "naspipe-train: fault injection runs on the concurrent CSP plane; policy %q is simulated-only\n", o.policy)
		return 2
	}
	if o.resume && o.ckptPath == "" {
		fmt.Fprintln(os.Stderr, "naspipe-train: -resume requires -checkpoint")
		return 2
	}
	if o.supervised && o.ckptPath == "" {
		fmt.Fprintln(os.Stderr, "naspipe-train: -supervise requires -checkpoint (recovery resumes from it)")
		return 2
	}
	opts := []naspipe.RunnerOption{
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
	}
	if o.faultSpec != "" {
		plan, err := naspipe.ParseFaultPlan(o.faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts = append(opts, naspipe.WithFaults(plan))
	}
	if o.ckptPath != "" {
		opts = append(opts, naspipe.WithCheckpoint(o.ckptPath))
	}
	if o.elasticAfter > 0 {
		opts = append(opts, naspipe.WithElasticResume())
	}
	var bus *naspipe.TelemetryBus
	if o.eventsOut != "" {
		bus = naspipe.NewTelemetryBus(0)
		opts = append(opts, naspipe.WithTelemetry(bus))
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// SIGINT/SIGTERM cancel the run between tasks; the committed frontier
	// is already checkpointed (and the incarnation bumped), so the
	// process exits resumable (3) instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := naspipe.Config{
		Space: o.space, Spec: naspipe.DefaultCluster(o.gpus),
		Seed: o.seed, NumSubnets: o.subnets,
	}

	code := 0
	if o.supervised {
		code = supervisedRun(ctx, r, cfg, o, bus)
	} else {
		code = plainRun(ctx, r, cfg, o)
	}
	if bus != nil {
		lines, eerr := telemetry.ExportFiles(bus, "", o.eventsOut)
		for _, l := range lines {
			fmt.Println(l)
		}
		if eerr != nil {
			fmt.Fprintln(os.Stderr, eerr)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

// plainRun is the unsupervised path: one incarnation, operator resumes.
func plainRun(ctx context.Context, r *naspipe.Runner, cfg naspipe.Config, o faultRunOpts) int {
	run := r.Run
	if o.resume {
		run = r.Resume
	}
	res, err := run(ctx, cfg)
	if err != nil {
		var crash *naspipe.CrashError
		switch {
		case errors.As(err, &crash):
			fmt.Fprintf(os.Stderr, "injected crash: %v\n", err)
			printCheckpoint(os.Stderr, o.ckptPath, "rerun with -resume")
			return 3
		case ctx.Err() != nil:
			fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
			if o.ckptPath != "" {
				printCheckpoint(os.Stderr, o.ckptPath, "rerun with -resume")
				return 3
			}
			return 1
		default:
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	printRunResult(o, res)
	return 0
}

// supervisedRun wraps the incarnations in the supervision plane:
// crashes and watchdog stalls auto-resume in-process.
func supervisedRun(ctx context.Context, r *naspipe.Runner, cfg naspipe.Config, o faultRunOpts, bus *naspipe.TelemetryBus) int {
	sc := naspipe.DefaultSuperviseConfig()
	sc.MaxRestarts = o.maxRestarts
	sc.Watchdog.StallAfter = o.stallTimeout
	sc.ElasticAfter = o.elasticAfter
	sc.Telemetry = bus
	sc.Log = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	run := r.RunSupervised
	if o.resume {
		run = r.ResumeSupervised
	}
	res, rep, err := run(ctx, cfg, sc)
	if err != nil {
		var giveUp *naspipe.GiveUpError
		switch {
		case ctx.Err() != nil && !errors.As(err, &giveUp):
			fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
			printCheckpoint(os.Stderr, o.ckptPath, "rerun with -resume (or -supervise -resume)")
			return 3
		case errors.As(err, &giveUp):
			fmt.Fprintln(os.Stderr, giveUp)
			return 1
		default:
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	fmt.Printf("supervised run:    %s, %d restarts, %d watchdog fires, final D=%d\n",
		rep.FinalState, rep.Restarts, rep.WatchdogFires, rep.FinalGPUs)
	if len(rep.ElasticSteps) > 0 {
		fmt.Printf("elastic steps:     depth %v after repeated same-stage incidents\n", rep.ElasticSteps)
	}
	printRunResult(o, res)
	return 0
}

func printRunResult(o faultRunOpts, res naspipe.Result) {
	fmt.Printf("concurrent CSP plane: %s on %d GPUs, %d subnets completed", o.space.Name, o.gpus, res.Completed)
	if res.BaseSeq > 0 {
		fmt.Printf(" (resumed at cursor %d)", res.BaseSeq)
	}
	fmt.Println()
	if res.ObservedTrace != nil {
		fmt.Printf("per-layer access order verified against the sequential reference (%d observed events)\n",
			len(res.ObservedTrace.Events))
	}
	if o.ckptPath != "" {
		printCheckpoint(os.Stdout, o.ckptPath, "")
	}
}

// printCheckpoint echoes the checkpoint file's cursor/incarnation state
// with an optional operator hint.
func printCheckpoint(w *os.File, path, hint string) {
	if path == "" {
		return
	}
	ck, err := naspipe.LoadCheckpoint(path)
	if err != nil {
		fmt.Fprintf(w, "checkpoint:        %s unreadable: %v\n", path, err)
		return
	}
	line := fmt.Sprintf("checkpoint:        %s (cursor %d/%d, incarnation %d)", path, ck.Cursor, ck.NumSubnets, ck.Incarnation)
	if hint != "" {
		line += " — " + hint
	}
	fmt.Fprintln(w, line)
}

func mustPolicyReproducible(name string) bool {
	p, err := naspipe.NewPolicy(name)
	if err != nil {
		return false
	}
	return p.Traits().Reproducible
}
